// Facade behavior of gpm::Engine: prepared-query reuse and caching,
// streaming delivery and early stop, policy/algo validation, and the
// shared algorithm-name table. The cross-algorithm result-equivalence
// checks live in engine_equivalence_test.cc.

#include "api/engine.h"

#include <gtest/gtest.h>

#include "api/algo_names.h"
#include "extensions/regex_strong.h"
#include "graph/diameter.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

MatchRequest Request(Algo algo, ExecPolicy policy = ExecPolicy::Serial()) {
  MatchRequest request;
  request.algo = algo;
  request.policy = policy;
  return request;
}

// A triangle pattern and a data graph holding one genuine triangle plus an
// open chain.
Graph TrianglePattern() {
  return MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {2, 0}});
}

Graph TriangleData() {
  return MakeGraph({1, 2, 3, 1, 2, 3},
                   {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 0}});
}

TEST(EngineTest, PrepareCachesDiameterAndQuotient) {
  Engine engine;
  // R->A, R->B1, R->B2, B1->C, B2->C: minQ merges B1/B2.
  Graph q = MakeGraph({1, 2, 3, 3, 4}, {{0, 1}, {0, 2}, {0, 3}, {2, 4}, {3, 4}});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->diameter(), *Diameter(q));
  ASSERT_TRUE(prepared->prep().has_minimized);
  EXPECT_LT(prepared->prep().minimized.num_nodes(), q.num_nodes());
  EXPECT_TRUE(prepared->strong_status().ok());
  EXPECT_FALSE(prepared->has_regex());
}

TEST(EngineTest, PreparedQueryServesManyDataGraphs) {
  Engine engine;
  auto prepared = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(prepared.ok());
  const Graph g1 = TriangleData();
  const Graph g2 = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});  // no triangle

  auto r1 = engine.Match(*prepared, g1, Request(Algo::kStrong));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->matched);
  EXPECT_EQ(CanonicalResult(r1->subgraphs),
            CanonicalResult(*MatchStrong(TrianglePattern(), g1)));

  auto r2 = engine.Match(*prepared, g2, Request(Algo::kStrong));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->matched);
  EXPECT_TRUE(r2->subgraphs.empty());
}

TEST(EngineTest, StreamingDeliversTheSameSubgraphs) {
  Engine engine;
  auto prepared = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(prepared.ok());
  const Graph g = TriangleData();

  std::vector<PerfectSubgraph> streamed;
  auto response = engine.Match(*prepared, g, Request(Algo::kStrongPlus),
                               [&](PerfectSubgraph&& pg) {
                                 streamed.push_back(std::move(pg));
                                 return true;
                               });
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->subgraphs.empty()) << "streamed runs must not "
                                              "materialize Θ in the response";
  EXPECT_EQ(response->subgraphs_delivered, streamed.size());
  auto direct = engine.Match(*prepared, g, Request(Algo::kStrongPlus));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(CanonicalResult(streamed), CanonicalResult(direct->subgraphs));
}

TEST(EngineTest, StreamingSinkStopsTheScan) {
  Engine engine;
  // Two disjoint triangles -> two perfect subgraphs.
  Graph g = MakeGraph({1, 2, 3, 1, 2, 3},
                      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  auto prepared = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(prepared.ok());
  auto full = engine.Match(*prepared, g, Request(Algo::kStrong));
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->subgraphs.size(), 1u);

  size_t seen = 0;
  auto stopped = engine.Match(*prepared, g, Request(Algo::kStrong),
                              [&](PerfectSubgraph&&) {
                                ++seen;
                                return false;  // stop after the first
                              });
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(stopped->subgraphs_delivered, 1u);
  EXPECT_TRUE(stopped->matched);
}

TEST(EngineTest, StreamingAlsoWorksForParallelAndDistributed) {
  Engine engine;
  auto prepared = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(prepared.ok());
  const Graph g = TriangleData();
  for (ExecPolicy policy :
       {ExecPolicy::Parallel(2), ExecPolicy::Distributed()}) {
    std::vector<PerfectSubgraph> streamed;
    auto response = engine.Match(*prepared, g, Request(Algo::kStrong, policy),
                                 [&](PerfectSubgraph&& pg) {
                                   streamed.push_back(std::move(pg));
                                   return true;
                                 });
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(CanonicalResult(streamed),
              CanonicalResult(*MatchStrong(TrianglePattern(), g)));
  }
}

TEST(EngineTest, RelationAlgosRejectSinkAndDistributed) {
  Engine engine;
  auto prepared = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(prepared.ok());
  const Graph g = TriangleData();

  auto streamed = engine.Match(*prepared, g, Request(Algo::kSimulation),
                               [](PerfectSubgraph&&) { return true; });
  EXPECT_TRUE(streamed.status().IsInvalidArgument());

  auto distributed = engine.Match(
      *prepared, g,
      Request(Algo::kSimulation, ExecPolicy::Distributed()));
  EXPECT_TRUE(distributed.status().IsNotImplemented());
}

TEST(EngineTest, EmptyAndUnfinalizedPatternsAreRejected) {
  Engine engine;
  Graph empty;
  empty.Finalize();
  EXPECT_TRUE(engine.Prepare(empty).status().IsInvalidArgument());

  Graph unfinalized;
  unfinalized.AddNode(1);
  EXPECT_TRUE(engine.Prepare(unfinalized).status().IsInvalidArgument());
}

TEST(EngineTest, DisconnectedPatternServesRelationsButNotStrong) {
  Engine engine;
  Graph q = MakeGraph({1, 2}, {});  // two isolated nodes
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->strong_status().ok());

  const Graph g = MakeGraph({1, 2}, {});
  auto sim = engine.Match(*prepared, g, Request(Algo::kSimulation));
  ASSERT_TRUE(sim.ok());
  EXPECT_TRUE(sim->matched);

  auto strong = engine.Match(*prepared, g, Request(Algo::kStrong));
  EXPECT_TRUE(strong.status().IsInvalidArgument());
}

TEST(EngineTest, RegexQueriesServeOnlyRegexStrong) {
  Engine engine;
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto prepared = engine.Prepare(std::move(query));
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->has_regex());

  Graph g;
  g.AddNode(1);
  g.AddNode(9);
  g.AddNode(2);
  g.AddEdge(0, 1, 5);
  g.AddEdge(1, 2, 5);
  g.Finalize();

  auto wrong = engine.Match(*prepared, g, Request(Algo::kStrong));
  EXPECT_TRUE(wrong.status().IsInvalidArgument());

  auto regex = engine.Match(*prepared, g, Request(Algo::kRegexStrong));
  ASSERT_TRUE(regex.ok());
  EXPECT_EQ(CanonicalResult(regex->subgraphs),
            CanonicalResult(
                *MatchStrongRegex(prepared->regex(), g,
                                  prepared->regex_radius())));

  // And a plain-prepared query cannot serve kRegexStrong.
  auto plain = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(plain.ok());
  auto bad = engine.Match(*plain, TriangleData(), Request(Algo::kRegexStrong));
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(EngineTest, OneShotMatchEqualsPreparedMatch) {
  Engine engine;
  const Graph q = TrianglePattern();
  const Graph g = TriangleData();
  auto one_shot = engine.Match(q, g, Request(Algo::kStrongPlus));
  ASSERT_TRUE(one_shot.ok());
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto reused = engine.Match(*prepared, g, Request(Algo::kStrongPlus));
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(CanonicalResult(one_shot->subgraphs),
            CanonicalResult(reused->subgraphs));
}

TEST(AlgoNamesTest, TableRoundTripsAndRejectsUnknown) {
  for (const AlgoSpec& spec : AlgorithmTable()) {
    auto request = RequestFromAlgoName(spec.name);
    ASSERT_TRUE(request.ok()) << spec.name;
    EXPECT_EQ(request->algo, spec.algo);
    EXPECT_EQ(request->policy.kind, spec.policy);
  }
  EXPECT_TRUE(RequestFromAlgoName("no-such-algo").status().IsInvalidArgument());
  EXPECT_NE(AlgoNameList().find("strong+"), std::string::npos);
  EXPECT_STREQ(AlgoName(Algo::kStrongPlus), "strong+");
}

TEST(AlgoNamesTest, LegacyParallelSpellingMapsToStrongPlusParallel) {
  auto request = RequestFromAlgoName("parallel");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->algo, Algo::kStrongPlus);
  EXPECT_EQ(request->policy.kind, ExecPolicy::Kind::kParallel);
}

// The complete (algorithm, policy) support matrix: after regex-strong
// reached executor parity, the relation notions under Distributed are the
// only NotImplemented combinations left — and each rejection must name
// the exact combination (CLI users read this message to know which flag
// to change) plus a way out. Everything else succeeds.
TEST(EngineTest, NotImplementedMatrixIsExactlyRelationTimesDistributed) {
  Engine engine;
  const Graph g = TriangleData();
  auto plain = engine.Prepare(TrianglePattern());
  ASSERT_TRUE(plain.ok());
  RegexQuery regex(TrianglePattern());
  auto regex_prepared = engine.Prepare(std::move(regex));
  ASSERT_TRUE(regex_prepared.ok());

  const Algo kAllAlgos[] = {Algo::kSimulation,   Algo::kDualSimulation,
                            Algo::kBoundedSimulation, Algo::kStrong,
                            Algo::kStrongPlus,   Algo::kRegexStrong};
  for (Algo algo : kAllAlgos) {
    const bool is_relation = algo == Algo::kSimulation ||
                             algo == Algo::kDualSimulation ||
                             algo == Algo::kBoundedSimulation;
    const PreparedQuery& query =
        algo == Algo::kRegexStrong ? *regex_prepared : *plain;
    for (ExecPolicy policy :
         {ExecPolicy::Serial(), ExecPolicy::Parallel(2),
          ExecPolicy::Distributed({.num_sites = 2})}) {
      SCOPED_TRACE(std::string(AlgoName(algo)) + "/" +
                   ExecPolicyName(policy.kind));
      auto response = engine.Match(query, g, Request(algo, policy));
      if (is_relation && policy.kind == ExecPolicy::Kind::kDistributed) {
        ASSERT_FALSE(response.ok());
        EXPECT_TRUE(response.status().IsNotImplemented());
        const std::string message = response.status().message();
        EXPECT_NE(message.find(AlgoName(algo)), std::string::npos)
            << message;
        EXPECT_NE(message.find("distributed"), std::string::npos) << message;
        // And a way out: the message points at the policies that do work.
        EXPECT_NE(message.find("ExecPolicy::Serial"), std::string::npos)
            << message;
      } else {
        ASSERT_TRUE(response.ok());
        EXPECT_TRUE(response->matched);
      }
    }
  }
}

TEST(EngineTest, PrepareCachedReturnsSharedCompiledQueries) {
  Engine engine;
  const Graph q1 = TrianglePattern();
  // Content-equal but separately built pattern: must hit the same entry.
  const Graph q2 = TrianglePattern();

  auto first = engine.PrepareCached(q1);
  ASSERT_TRUE(first.ok());
  auto second = engine.PrepareCached(q2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // literally the same object

  const EngineCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.prepared.lookups, 2u);
  EXPECT_EQ(stats.prepared.hits, 1u);
  EXPECT_EQ(stats.prepared.misses, 1u);

  // Same validation as Prepare.
  Graph empty;
  empty.Finalize();
  EXPECT_FALSE(engine.PrepareCached(empty).ok());
}

}  // namespace
}  // namespace gpm
