// Failure injection: corrupted inputs and hostile parameters must come
// back as Status errors (or bounded results), never crashes.

#include <gtest/gtest.h>

#include "common/timer.h"
#include "distributed/fragment.h"
#include "graph/generator.h"
#include "graph/graph_io.h"
#include "isomorphism/vf2.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(FailureInjectionTest, BinaryGraphTruncationSweep) {
  // Every prefix of a valid blob must decode to an error, not a crash.
  Graph g = MakeUniform(50, 1.3, 4, 3);
  const std::string blob = SerializeGraph(g);
  for (size_t cut = 0; cut < blob.size(); cut += 7) {
    auto decoded = DeserializeGraph(blob.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << cut;
  }
}

TEST(FailureInjectionTest, BinaryGraphBitFlipSweep) {
  // Single-byte mutations either decode to *some* graph (the format has
  // no checksum — that is documented) or fail cleanly; index fields that
  // go out of range must produce Corruption.
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  const std::string blob = SerializeGraph(g);
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = blob;
    const size_t pos = static_cast<size_t>(rng.Uniform(mutated.size()));
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    auto decoded = DeserializeGraph(mutated);  // must not crash
    if (decoded.ok()) {
      EXPECT_LE(decoded->num_nodes(), 0xFFFFu);  // sane small graph
    }
  }
}

TEST(FailureInjectionTest, TextGraphGarbageLines) {
  const char* cases[] = {
      "t x y\n",
      "t 1 0\nv 0\n",
      "t 1 0\nv 0 1 2 3\n",
      "t 1 1\nv 0 1\ne 0\n",
      "t 1 1\nv 0 1\ne 0 0 0 0\n",
      "t 18446744073709551616 0\n",
      "v 0 1\nt 1 0\n",
      "t 2 0\nv 0 1\nv 2 1\n",
  };
  for (const char* text : cases) {
    auto parsed = ReadGraphText(text);
    EXPECT_FALSE(parsed.ok()) << "input: " << text;
  }
}

TEST(FailureInjectionTest, FragmentPayloadCorruptionSweep) {
  Graph g = MakeUniform(30, 1.3, 3, 5);
  PartitionAssignment p;
  p.num_fragments = 1;
  p.owner.assign(g.num_nodes(), 0);
  Fragment fragment(g, p, 0);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
  const std::string records = fragment.EncodeRecords(all);
  for (size_t cut = 0; cut < records.size(); cut += 5) {
    EXPECT_FALSE(Fragment::DecodeRecords(records.substr(0, cut)).ok());
  }
  const std::string ids = Fragment::EncodeIdList(all);
  for (size_t cut = 1; cut < ids.size(); cut += 3) {
    EXPECT_FALSE(Fragment::DecodeIdList(ids.substr(0, cut)).ok());
  }
}

TEST(FailureInjectionTest, Vf2TimeBudgetIsHonored) {
  // A pattern with massive multiplicity on a single-label graph: full
  // enumeration is astronomically large; the budget must cut it off.
  Graph g = MakeUniform(3000, 1.3, 1, 7);  // one label: total ambiguity
  Graph q = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}});
  Vf2Options options;
  options.time_budget_seconds = 0.2;
  Timer timer;
  auto result = Vf2Enumerate(q, g, options);
  EXPECT_TRUE(result.timed_out || result.matches.size() < 100000000);
  EXPECT_LT(timer.Seconds(), 5.0);
}

TEST(FailureInjectionTest, HugeRadiusOverrideIsSafe) {
  // A radius far beyond the graph diameter just makes every ball the
  // whole component; results must match the component-sized answer, not
  // overflow or hang.
  Graph q = MakeGraph({1, 1}, {{0, 1}});
  Graph g = MakeGraph({1, 1, 1}, {{0, 1}, {1, 2}});
  MatchOptions options;
  options.radius_override = 1000000;
  auto result = MatchStrong(q, g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ((*result)[0].nodes.size(), 3u);
}

TEST(FailureInjectionTest, SelfLoopHeavyGraphDoesNotConfuseMatching) {
  Graph q = MakeGraph({1}, {{0, 0}});
  Graph g;
  for (int i = 0; i < 10; ++i) g.AddNode(1);
  for (NodeId i = 0; i < 10; ++i) g.AddEdge(i, i);
  g.Finalize();
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 10u);  // each self-loop node matches alone
}

TEST(FailureInjectionTest, PatternLargerThanAnyComponent) {
  Graph q = MakeGraph({1, 1, 1, 1}, {{0, 1}, {1, 2}, {2, 3}});
  Graph g = MakeGraph({1, 1}, {{0, 1}});  // too small
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

}  // namespace
}  // namespace gpm
