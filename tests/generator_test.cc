#include "graph/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/components.h"
#include "graph/diameter.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

TEST(MakeUniformTest, HitsRequestedSizes) {
  const uint32_t n = 1000;
  Graph g = MakeUniform(n, 1.2, 50, /*seed=*/1);
  EXPECT_EQ(g.num_nodes(), n);
  const auto expected =
      static_cast<size_t>(std::llround(std::pow(double{n}, 1.2)));
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(MakeUniformTest, DeterministicInSeed) {
  Graph a = MakeUniform(500, 1.2, 20, 99);
  Graph b = MakeUniform(500, 1.2, 20, 99);
  EXPECT_TRUE(a.StructurallyEqual(b));
  Graph c = MakeUniform(500, 1.2, 20, 100);
  EXPECT_FALSE(a.StructurallyEqual(c));
}

TEST(MakeUniformTest, NoSelfLoopsNoParallelEdges) {
  Graph g = MakeUniform(300, 1.3, 10, 7);
  size_t edges = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_NE(nbrs[i], u);
      if (i > 0) {
        EXPECT_LT(nbrs[i - 1], nbrs[i]);  // sorted & distinct
      }
    }
    edges += nbrs.size();
  }
  EXPECT_EQ(edges, g.num_edges());
}

TEST(MakeUniformTest, LabelsWithinRange) {
  Graph g = MakeUniform(200, 1.1, 5, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_LT(g.label(v), 5u);
}

TEST(MakeUniformTest, CapsAtCompleteDigraph) {
  // n^alpha would exceed n(n-1): generator must cap, not loop forever.
  Graph g = MakeUniform(5, 3.0, 2, 11);
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(MakeAmazonLikeTest, DensityMatchesSnapshot) {
  Graph g = MakeAmazonLike(20000, 5);
  const double avg_deg =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_GT(avg_deg, 2.0);
  EXPECT_LT(avg_deg, 4.5);  // snapshot is ~3.26
}

TEST(MakeYouTubeLikeTest, DensityMatchesSnapshot) {
  Graph g = MakeYouTubeLike(5000, 5);
  const double avg_deg =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_nodes());
  EXPECT_GT(avg_deg, 14.0);
  EXPECT_LT(avg_deg, 30.0);  // snapshot is ~20
}

TEST(MakeYouTubeLikeTest, HasReciprocalEdges) {
  Graph g = MakeYouTubeLike(2000, 9);
  size_t reciprocal = 0, total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      ++total;
      if (g.HasEdge(v, u)) ++reciprocal;
    }
  }
  EXPECT_GT(static_cast<double>(reciprocal) / static_cast<double>(total), 0.2);
}

TEST(CopyingModelTest, InDegreesAreHeavyTailed) {
  Graph g = MakeAmazonLike(20000, 13);
  size_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Preferential attachment produces hubs far above the ~3 average.
  EXPECT_GT(max_in, 50u);
}

TEST(RandomPatternTest, ConnectedWithRequestedNodes) {
  std::vector<Label> pool{1, 2, 3, 4, 5};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph q = RandomPattern(8, 1.2, pool, seed);
    EXPECT_EQ(q.num_nodes(), 8u);
    EXPECT_TRUE(IsConnected(q)) << "seed " << seed;
    EXPECT_TRUE(Diameter(q).ok());
  }
}

TEST(RandomPatternTest, SingleNodePattern) {
  std::vector<Label> pool{7};
  Graph q = RandomPattern(1, 1.2, pool, 0);
  EXPECT_EQ(q.num_nodes(), 1u);
  EXPECT_EQ(q.num_edges(), 0u);
}

TEST(ExtractPatternTest, InducedAndConnected) {
  Graph g = MakeAmazonLike(5000, 17);
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    auto q = ExtractPattern(g, 10, &rng);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q->num_nodes(), 10u);
    EXPECT_TRUE(IsConnected(*q));
  }
}

TEST(ExtractPatternTest, FailsOnTooSmallGraph) {
  Graph g = MakeUniform(5, 1.0, 2, 1);
  Rng rng(1);
  EXPECT_FALSE(ExtractPattern(g, 10, &rng).ok());
}

}  // namespace
}  // namespace gpm
