// GpmServer: serving correctness (a served response equals a direct
// engine match on the same snapshot), epoch/instance provenance across
// writer batches, admission and deadline accounting, Create validation,
// and the metrics invariants.

#include "serving/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/engine.h"
#include "extensions/incremental.h"
#include "tests/test_util.h"

namespace gpm::serving {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

Graph TrianglePattern() {
  return MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {2, 0}});
}

// One genuine triangle plus an open chain that a single edge insertion
// (5 -> 3) closes into a second match region.
Graph TriangleData() {
  return MakeGraph({1, 2, 3, 1, 2, 3},
                   {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 0}});
}

std::vector<std::shared_ptr<const PreparedQuery>> PrepareAll(
    Engine& engine, const std::vector<Graph>& patterns) {
  std::vector<std::shared_ptr<const PreparedQuery>> out;
  for (const Graph& p : patterns) {
    auto prepared = engine.PrepareCached(p);
    EXPECT_TRUE(prepared.ok()) << prepared.status().message();
    out.push_back(std::move(prepared).ValueOrDie());
  }
  return out;
}

TEST(GpmServerTest, ServeEqualsDirectMatchOnTheSameSnapshot) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  const Graph data = TriangleData();
  auto server = GpmServer::Create(engine, queries, data);
  ASSERT_TRUE(server.ok()) << server.status().message();
  auto client = server->Connect();
  ASSERT_TRUE(client.ok());

  auto response = server->Serve(*client, 0);
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_TRUE(response->match.matched);
  EXPECT_EQ(response->epoch, 1u);
  ASSERT_NE(response->graph, nullptr);
  EXPECT_EQ(response->graph_instance, response->graph->instance_id());

  // The same query against the snapshot the response says it used must
  // produce the identical result set.
  auto direct = engine.Match(*queries[0], *response->graph);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(CanonicalResult(response->match.subgraphs),
            CanonicalResult(direct->subgraphs));

  const auto metrics = server->metrics();
  EXPECT_EQ(metrics.requests, 1u);
  EXPECT_EQ(metrics.served, 1u);
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_EQ(metrics.latency.count, 1u);
}

TEST(GpmServerTest, ApplyEditsPublishesANewEpochWithANewInstance) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  auto server = GpmServer::Create(engine, queries, TriangleData());
  ASSERT_TRUE(server.ok());
  auto client = server->Connect();
  ASSERT_TRUE(client.ok());

  auto before = server->Serve(*client, 0);
  ASSERT_TRUE(before.ok());

  // Closing 5 -> 3 creates a second triangle-shaped match region.
  const GraphEdit edits[] = {GraphEdit::InsertEdge(5, 3)};
  ASSERT_TRUE(server->ApplyEdits(edits).ok());

  auto after = server->Serve(*client, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, before->epoch + 1);
  EXPECT_NE(after->graph_instance, before->graph_instance);
  EXPECT_GT(after->match.subgraphs.size(), before->match.subgraphs.size());

  // The new snapshot must agree with a from-scratch match on the edited
  // graph (incremental repair == full recompute).
  auto truth = engine.Match(*queries[0], *after->graph);
  ASSERT_TRUE(truth.ok());
  EXPECT_EQ(CanonicalResult(after->match.subgraphs),
            CanonicalResult(truth->subgraphs));

  const auto metrics = server->metrics();
  EXPECT_EQ(metrics.writer_batches, 1u);
  EXPECT_EQ(metrics.writer_edits, 1u);
  EXPECT_EQ(metrics.snapshots.epoch, 2u);
  EXPECT_EQ(metrics.snapshots.published, 1u);
}

TEST(GpmServerTest, AdmissionRejectsOverRateClients) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  auto server = GpmServer::Create(engine, queries, TriangleData());
  ASSERT_TRUE(server.ok());
  // A starved bucket: 1 token burst, negligible refill.
  auto client = server->Connect(/*admission_rate=*/1e-6,
                                /*admission_burst=*/1.0);
  ASSERT_TRUE(client.ok());

  EXPECT_TRUE(server->Serve(*client, 0).ok());
  auto rejected = server->Serve(*client, 0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  const auto metrics = server->metrics();
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.served, 1u);
  EXPECT_EQ(metrics.rejected, 1u);

  // A second client has its own bucket — unaffected by the starved one.
  auto other = server->Connect(/*admission_rate=*/0, /*admission_burst=*/0);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(server->Serve(*other, 0).ok());
}

TEST(GpmServerTest, DeadlineMissesAreServedButCounted) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  ServerOptions options;
  options.deadline_seconds = 1e-12;  // nothing finishes this fast
  auto server = GpmServer::Create(engine, queries, TriangleData(), options);
  ASSERT_TRUE(server.ok());
  auto client = server->Connect();
  ASSERT_TRUE(client.ok());

  auto response = server->Serve(*client, 0);
  ASSERT_TRUE(response.ok()) << "a deadline miss still returns its result";
  EXPECT_TRUE(response->deadline_missed);
  EXPECT_EQ(server->metrics().deadline_misses, 1u);
  EXPECT_EQ(server->metrics().served, 1u);
}

TEST(GpmServerTest, ConnectHonorsMaxClients) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  ServerOptions options;
  options.max_clients = 2;
  auto server = GpmServer::Create(engine, queries, TriangleData(), options);
  ASSERT_TRUE(server.ok());

  auto a = server->Connect();
  auto b = server->Connect();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = server->Connect();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);

  // Disconnecting frees the slot.
  *a = GpmServer::Client();
  EXPECT_TRUE(server->Connect().ok());
}

TEST(GpmServerTest, ServeValidatesTheQueryIndex) {
  Engine engine;
  auto queries = PrepareAll(engine, {TrianglePattern()});
  auto server = GpmServer::Create(engine, queries, TriangleData());
  ASSERT_TRUE(server.ok());
  auto client = server->Connect();
  ASSERT_TRUE(client.ok());

  auto response = server->Serve(*client, queries.size());
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(server->metrics().errors, 1u);
}

TEST(GpmServerTest, CreateRejectsBadConfigurations) {
  Engine engine;
  const Graph data = TriangleData();

  // No queries to serve.
  EXPECT_FALSE(GpmServer::Create(engine, {}, data).ok());

  // A null query entry.
  std::vector<std::shared_ptr<const PreparedQuery>> with_null =
      PrepareAll(engine, {TrianglePattern()});
  with_null.push_back(nullptr);
  EXPECT_FALSE(GpmServer::Create(engine, with_null, data).ok());

  // Writer index out of range.
  ServerOptions options;
  options.writer_query_index = 7;
  EXPECT_FALSE(GpmServer::Create(engine, PrepareAll(engine, {TrianglePattern()}),
                                 data, options)
                   .ok());
}

}  // namespace
}  // namespace gpm::serving
