#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(GraphTextIOTest, RoundTrip) {
  Graph g = MakeGraph({3, 1, 4, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto parsed = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(g.StructurallyEqual(*parsed));
}

TEST(GraphTextIOTest, RoundTripWithEdgeLabels) {
  Graph g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(0, 1, 7);
  g.Finalize();
  auto parsed = ReadGraphText(WriteGraphText(g));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(g.StructurallyEqual(*parsed, /*compare_edge_labels=*/true));
}

TEST(GraphTextIOTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "t 2 1\n"
      "\n"
      "v 0 10\n"
      "v 1 20\n"
      "# another\n"
      "e 0 1\n";
  auto parsed = ReadGraphText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_nodes(), 2u);
  EXPECT_TRUE(parsed->HasEdge(0, 1));
}

TEST(GraphTextIOTest, RejectsMissingHeader) {
  EXPECT_TRUE(ReadGraphText("v 0 1\n").status().IsCorruption());
}

TEST(GraphTextIOTest, RejectsOutOfOrderNodeIds) {
  EXPECT_TRUE(
      ReadGraphText("t 2 0\nv 1 0\nv 0 0\n").status().IsCorruption());
}

TEST(GraphTextIOTest, RejectsEdgeOutOfRange) {
  EXPECT_TRUE(
      ReadGraphText("t 1 1\nv 0 0\ne 0 5\n").status().IsCorruption());
}

TEST(GraphTextIOTest, RejectsNodeCountMismatch) {
  EXPECT_TRUE(ReadGraphText("t 3 0\nv 0 0\n").status().IsCorruption());
}

TEST(GraphTextIOTest, RejectsUnknownRecord) {
  EXPECT_TRUE(ReadGraphText("t 0 0\nx 1 2\n").status().IsCorruption());
}

TEST(GraphTextIOTest, RejectsNonNumericFields) {
  EXPECT_TRUE(ReadGraphText("t 1 0\nv 0 abc\n").status().IsInvalidArgument());
}

TEST(GraphBinaryIOTest, RoundTrip) {
  Graph g = MakeUniform(200, 1.2, 10, /*seed=*/42);
  auto parsed = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(g.StructurallyEqual(*parsed, /*compare_edge_labels=*/true));
}

TEST(GraphBinaryIOTest, RejectsBadMagic) {
  std::string blob = SerializeGraph(MakeGraph({0}, {}));
  blob[0] = 'X';
  EXPECT_TRUE(DeserializeGraph(blob).status().IsCorruption());
}

TEST(GraphBinaryIOTest, RejectsTruncation) {
  std::string blob = SerializeGraph(MakeGraph({0, 0}, {{0, 1}}));
  blob.resize(blob.size() - 3);
  EXPECT_TRUE(DeserializeGraph(blob).status().IsCorruption());
}

TEST(GraphBinaryIOTest, RejectsTrailingBytes) {
  std::string blob = SerializeGraph(MakeGraph({0}, {}));
  blob += "junk";
  EXPECT_TRUE(DeserializeGraph(blob).status().IsCorruption());
}

TEST(GraphFileIOTest, SaveAndLoad) {
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  const std::string path = ::testing::TempDir() + "/gpm_io_test.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(g.StructurallyEqual(*loaded));
  std::remove(path.c_str());
}

TEST(GraphFileIOTest, LoadMissingFileIsIOError) {
  EXPECT_TRUE(LoadGraph("/nonexistent/gpm.graph").status().IsIOError());
}

}  // namespace
}  // namespace gpm
