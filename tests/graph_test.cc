#include "graph/graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  Label a = dict.Intern("alpha");
  Label b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "alpha");
  ASSERT_TRUE(dict.Find("beta").ok());
  EXPECT_EQ(*dict.Find("beta"), b);
  EXPECT_FALSE(dict.Find("gamma").ok());
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  g.Finalize();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.DistinctLabels().empty());
}

TEST(GraphTest, AddNodesAndEdges) {
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Size(), 6u);
  EXPECT_EQ(g.label(0), 1u);
  EXPECT_EQ(g.label(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 0));
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
}

TEST(GraphTest, FinalizeDedupsParallelEdges) {
  Graph g;
  g.AddNode(0);
  g.AddNode(0);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.Finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 1u);
}

TEST(GraphTest, SelfLoopsAreKept) {
  Graph g;
  g.AddNode(3);
  g.AddEdge(0, 0);
  g.Finalize();
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(GraphTest, AdjacencyIsSortedAfterFinalize) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode(0);
  g.AddEdge(0, 4);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  g.Finalize();
  auto nbrs = g.OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, LabelIndex) {
  Graph g = MakeGraph({5, 7, 5, 5}, {});
  auto fives = g.NodesWithLabel(5);
  ASSERT_EQ(fives.size(), 3u);
  EXPECT_EQ(fives[0], 0u);
  EXPECT_EQ(fives[1], 2u);
  EXPECT_EQ(fives[2], 3u);
  EXPECT_EQ(g.NodesWithLabel(7).size(), 1u);
  EXPECT_TRUE(g.NodesWithLabel(99).empty());
  auto labels = g.DistinctLabels();
  EXPECT_EQ(std::vector<Label>(labels.begin(), labels.end()),
            (std::vector<Label>{5, 7}));
}

TEST(GraphTest, EdgeLabelsAlignAfterFinalize) {
  Graph g;
  g.AddNode(0);
  g.AddNode(0);
  g.AddNode(0);
  g.AddEdge(0, 2, 9);
  g.AddEdge(0, 1, 4);
  g.Finalize();
  auto nbrs = g.OutNeighbors(0);
  auto labels = g.OutEdgeLabels(0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(labels[0], 4u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(labels[1], 9u);
}

TEST(GraphTest, InducedSubgraph) {
  //    0 -> 1 -> 2
  //    |_________^
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {0, 2}});
  std::vector<NodeId> pick{0, 2};
  std::vector<NodeId> to_parent;
  Graph sub = g.InducedSubgraph(pick, &to_parent);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only 0->2 survives
  EXPECT_EQ(to_parent, pick);
  EXPECT_EQ(sub.label(0), 1u);
  EXPECT_EQ(sub.label(1), 3u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
}

TEST(GraphTest, ReversedFlipsEdges) {
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  Graph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_FALSE(r.HasEdge(0, 1));
  EXPECT_EQ(r.label(0), 1u);
}

TEST(GraphTest, StructurallyEqual) {
  Graph a = MakeGraph({1, 2}, {{0, 1}});
  Graph b = MakeGraph({1, 2}, {{0, 1}});
  Graph c = MakeGraph({1, 2}, {{1, 0}});
  Graph d = MakeGraph({2, 1}, {{0, 1}});
  EXPECT_TRUE(a.StructurallyEqual(b));
  EXPECT_FALSE(a.StructurallyEqual(c));
  EXPECT_FALSE(a.StructurallyEqual(d));
}

TEST(GraphTest, StructurallyEqualWithEdgeLabels) {
  Graph a, b;
  a.AddNode(0);
  a.AddNode(0);
  a.AddEdge(0, 1, 5);
  a.Finalize();
  b.AddNode(0);
  b.AddNode(0);
  b.AddEdge(0, 1, 6);
  b.Finalize();
  EXPECT_TRUE(a.StructurallyEqual(b));  // labels ignored by default
  EXPECT_FALSE(a.StructurallyEqual(b, /*compare_edge_labels=*/true));
}

}  // namespace
}  // namespace gpm
