// Randomized differential harness for incremental maintenance (in the
// style of cache_batch_equivalence_test.cc): mixed update sequences —
// labeled edge inserts/removes, node additions — applied one by one and
// batched, under Serial and Parallel sessions, always asserting the
// maintained result equals a from-scratch MatchStrong on the current
// graph, that every execution mode agrees byte-for-byte, and that the
// delta stream reconstructs Θ exactly.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "api/engine.h"
#include "api/incremental_session.h"
#include "graph/generator.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;

// A labeled multigraph workload: MakeUniform topology plus random edge
// labels in [0, num_edge_labels) re-rolled per edge, so parallel labeled
// edges arise naturally during the update sequence.
Graph MakeLabeledBase(uint32_t n, uint32_t num_labels,
                      uint32_t num_edge_labels, uint64_t seed) {
  const Graph base = MakeUniform(n, 1.2, num_labels, seed);
  Graph g;
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (NodeId v = 0; v < base.num_nodes(); ++v) g.AddNode(base.label(v));
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (NodeId v : base.OutNeighbors(u)) {
      g.AddEdge(u, v, static_cast<EdgeLabel>(rng.Uniform(num_edge_labels)));
    }
  }
  g.Finalize();
  return g;
}

// One random edit against the current state of `reference`.
GraphEdit RandomEdit(const MutableGraph& reference, Rng* rng,
                     uint32_t num_edge_labels) {
  const double roll = rng->NextDouble();
  if (roll < 0.05) {
    return GraphEdit::AddNode(static_cast<Label>(rng->Uniform(3)));
  }
  const NodeId a = static_cast<NodeId>(rng->Uniform(reference.num_nodes()));
  const NodeId b = static_cast<NodeId>(rng->Uniform(reference.num_nodes()));
  const EdgeLabel label = static_cast<EdgeLabel>(rng->Uniform(num_edge_labels));
  if (roll < 0.55) return GraphEdit::InsertEdge(a, b, label);
  return GraphEdit::RemoveEdge(a, b, label);
}

void ExpectByteIdentical(const std::vector<PerfectSubgraph>& a,
                         const std::vector<PerfectSubgraph>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].center, b[i].center);
    EXPECT_TRUE(a[i].SameSubgraph(b[i]));
  }
}

TEST(IncrementalEquivalenceTest, RandomizedDifferentialSweep) {
  constexpr int kRounds = 3;
  constexpr int kSteps = 18;
  constexpr uint32_t kEdgeLabels = 3;
  Engine engine;

  for (int round = 0; round < kRounds; ++round) {
    const uint64_t seed = 1000 + 17 * round;
    const Graph g = MakeLabeledBase(60 + 10 * round, 3, kEdgeLabels, seed);
    std::vector<Label> pool{0, 1, 2};
    const Graph q = RandomPattern(3 + round % 2, 1.2, pool, seed + 1);
    auto prepared = engine.Prepare(q);
    ASSERT_TRUE(prepared.ok());

    // Four execution modes of the same update stream: serial one-by-one,
    // parallel one-by-one, serial batched, and a delta mirror.
    auto serial = engine.OpenIncremental(*prepared, g);
    IncrementalOptions parallel_options;
    parallel_options.policy = ExecPolicy::Parallel(4);
    auto parallel = engine.OpenIncremental(*prepared, g, parallel_options);
    auto batched = engine.OpenIncremental(*prepared, g);
    std::map<uint64_t, PerfectSubgraph> mirror;
    IncrementalOptions mirror_options;
    mirror_options.delta_sink = [&mirror](SubgraphDelta&& delta) {
      if (delta.kind == SubgraphDelta::Kind::kAdded) {
        mirror.emplace(delta.subgraph.ContentHash(),
                       std::move(delta.subgraph));
      } else {
        mirror.erase(delta.subgraph.ContentHash());
      }
      return true;
    };
    auto mirrored = engine.OpenIncremental(*prepared, g, mirror_options);
    ASSERT_TRUE(serial.ok() && parallel.ok() && batched.ok() &&
                mirrored.ok());
    for (const PerfectSubgraph& pg : mirrored->CurrentMatches()) {
      mirror.emplace(pg.ContentHash(), pg);
    }

    Rng rng(seed + 2);
    std::vector<GraphEdit> pending;
    for (int step = 0; step < kSteps; ++step) {
      const GraphEdit edit = RandomEdit(serial->data(), &rng, kEdgeLabels);
      const Status applied = [&] {
        switch (edit.kind) {
          case GraphEdit::Kind::kInsertEdge:
            return serial->InsertEdge(edit.from, edit.to, edit.edge_label);
          case GraphEdit::Kind::kRemoveEdge:
            return serial->RemoveEdge(edit.from, edit.to, edit.edge_label);
          case GraphEdit::Kind::kAddNode:
            serial->AddNode(edit.node_label);
            return Status::OK();
        }
        return Status::Internal("unreachable");
      }();
      // Every mode sees the same edit stream, rejected edits included
      // (they must reject identically).
      switch (edit.kind) {
        case GraphEdit::Kind::kInsertEdge: {
          EXPECT_EQ(
              parallel->InsertEdge(edit.from, edit.to, edit.edge_label).code(),
              applied.code());
          EXPECT_EQ(
              mirrored->InsertEdge(edit.from, edit.to, edit.edge_label).code(),
              applied.code());
          break;
        }
        case GraphEdit::Kind::kRemoveEdge: {
          EXPECT_EQ(
              parallel->RemoveEdge(edit.from, edit.to, edit.edge_label).code(),
              applied.code());
          EXPECT_EQ(
              mirrored->RemoveEdge(edit.from, edit.to, edit.edge_label).code(),
              applied.code());
          break;
        }
        case GraphEdit::Kind::kAddNode: {
          parallel->AddNode(edit.node_label);
          mirrored->AddNode(edit.node_label);
          break;
        }
      }
      if (applied.ok() || edit.kind == GraphEdit::Kind::kAddNode) {
        pending.push_back(edit);
      }

      // Differential check: maintained == from-scratch on every step.
      auto scratch = MatchStrong(q, *serial->Snapshot());
      ASSERT_TRUE(scratch.ok());
      EXPECT_EQ(CanonicalResult(serial->CurrentMatches()),
                CanonicalResult(*scratch));
      ExpectByteIdentical(serial->CurrentMatches(),
                          parallel->CurrentMatches());

      // Delta mirror reconstructs Θ.
      std::vector<PerfectSubgraph> mirror_list;
      for (const auto& [hash, pg] : mirror) mirror_list.push_back(pg);
      EXPECT_EQ(CanonicalResult(mirror_list),
                CanonicalResult(serial->CurrentMatches()));

      // Batch the accepted edits in chunks of 5: batched must land on the
      // same state as one-by-one.
      if (pending.size() >= 5 || step == kSteps - 1) {
        ASSERT_TRUE(batched->ApplyBatch(pending).ok());
        pending.clear();
        ExpectByteIdentical(batched->CurrentMatches(),
                            serial->CurrentMatches());
        EXPECT_EQ(batched->data().num_edges(), serial->data().num_edges());
      }
    }
  }
}

// Parallel-edge stress: a dense multigraph where most updates hit node
// pairs that already carry an edge under another label.
TEST(IncrementalEquivalenceTest, LabeledMultigraphChurn) {
  Engine engine;
  const Graph g = MakeLabeledBase(40, 2, 2, 77);
  std::vector<Label> pool{0, 1};
  const Graph q = RandomPattern(3, 1.3, pool, 78);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto session = engine.OpenIncremental(*prepared, g);
  ASSERT_TRUE(session.ok());

  Rng rng(79);
  size_t parallel_edges_created = 0;
  for (int step = 0; step < 60; ++step) {
    // Concentrate churn on a 10-node slice so parallel labeled edges and
    // exact-duplicate rejections actually occur.
    const NodeId a = static_cast<NodeId>(rng.Uniform(10));
    const NodeId b = static_cast<NodeId>(rng.Uniform(10));
    if (a == b) continue;
    const EdgeLabel label = static_cast<EdgeLabel>(rng.Uniform(2));
    if (rng.Bernoulli(0.7)) {
      const bool had_other_label = session->data().HasEdge(a, b);
      if (session->InsertEdge(a, b, label).ok() && had_other_label) {
        ++parallel_edges_created;
      }
    } else {
      (void)session->RemoveEdge(a, b, label);
    }
    auto scratch = MatchStrong(q, *session->Snapshot());
    ASSERT_TRUE(scratch.ok());
    EXPECT_EQ(CanonicalResult(session->CurrentMatches()),
              CanonicalResult(*scratch));
  }
  // The workload actually exercised label-sensitive parallel edges.
  EXPECT_GT(parallel_edges_created, 0u);
}

}  // namespace
}  // namespace gpm
