// Engine::OpenIncremental / IncrementalSession: prepared-query reuse,
// Serial-vs-Parallel determinism, delta streaming, and the snapshot-based
// engine-cache integration.

#include "api/incremental_session.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "api/engine.h"
#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

void ExpectConsistent(const IncrementalSession& session) {
  auto scratch = MatchStrong(session.pattern(), *session.Snapshot());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(CanonicalResult(session.CurrentMatches()),
            CanonicalResult(*scratch));
}

TEST(IncrementalSessionTest, OpenReusesPreparedQueryAndMatches) {
  Engine engine;
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto session = engine.OpenIncremental(*prepared, g);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->radius(), prepared->diameter());
  EXPECT_EQ(session->CurrentMatches().size(), 1u);
  ExpectConsistent(*session);

  ASSERT_TRUE(session->InsertEdge(2, 1).ok());
  ExpectConsistent(*session);
  // Balls around nodes 0, 1, and 2 each yield a distinct subgraph now.
  EXPECT_EQ(session->CurrentMatches().size(), 3u);
}

TEST(IncrementalSessionTest, OpenValidatesInputs) {
  Engine engine;
  Graph g = MakeGraph({1, 2}, {{0, 1}});

  // Disconnected pattern: the strong family cannot run.
  Graph disconnected = MakeGraph({1, 2}, {});
  auto bad = engine.Prepare(disconnected);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(
      engine.OpenIncremental(*bad, g).status().IsInvalidArgument());

  Graph q = MakeGraph({1, 2}, {{0, 1}});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  // Distributed sessions are rejected, with the policy named.
  IncrementalOptions options;
  options.policy = ExecPolicy::Distributed();
  const Status distributed =
      engine.OpenIncremental(*prepared, g, options).status();
  EXPECT_EQ(distributed.code(), StatusCode::kNotImplemented);

  // Regex queries have no incremental executor.
  RegexQuery regex(q);
  auto regex_prepared = engine.Prepare(std::move(regex));
  ASSERT_TRUE(regex_prepared.ok());
  EXPECT_EQ(engine.OpenIncremental(*regex_prepared, g).status().code(),
            StatusCode::kNotImplemented);
}

TEST(IncrementalSessionTest, ParallelSessionIsByteIdenticalToSerial) {
  Engine engine;
  Graph g = MakeUniform(70, 1.25, 3, 21);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 22);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  auto serial = engine.OpenIncremental(*prepared, g);
  IncrementalOptions parallel_options;
  parallel_options.policy = ExecPolicy::Parallel(4);
  auto parallel = engine.OpenIncremental(*prepared, g, parallel_options);
  ASSERT_TRUE(serial.ok() && parallel.ok());

  Rng rng(23);
  for (int step = 0; step < 15; ++step) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (a == b) continue;
    if (rng.Bernoulli(0.5)) {
      const bool s = serial->InsertEdge(a, b).ok();
      const bool p = parallel->InsertEdge(a, b).ok();
      EXPECT_EQ(s, p);
    } else {
      const bool s = serial->RemoveEdge(a, b).ok();
      const bool p = parallel->RemoveEdge(a, b).ok();
      EXPECT_EQ(s, p);
    }
    // Byte-identical: same subgraphs in the same (center, hash) order.
    const auto serial_matches = serial->CurrentMatches();
    const auto parallel_matches = parallel->CurrentMatches();
    ASSERT_EQ(serial_matches.size(), parallel_matches.size());
    for (size_t i = 0; i < serial_matches.size(); ++i) {
      EXPECT_EQ(serial_matches[i].center, parallel_matches[i].center);
      EXPECT_TRUE(serial_matches[i].SameSubgraph(parallel_matches[i]));
    }
  }
  ExpectConsistent(*serial);
  ExpectConsistent(*parallel);
}

TEST(IncrementalSessionTest, DeltaSinkMirrorsMaintainedResult) {
  Engine engine;
  Graph g = MakeUniform(50, 1.25, 3, 31);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 32);
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());

  // Mirror Θ by content hash from the delta stream alone.
  std::map<uint64_t, PerfectSubgraph> mirror;
  IncrementalOptions options;
  options.delta_sink = [&mirror](SubgraphDelta&& delta) {
    const uint64_t hash = delta.subgraph.ContentHash();
    if (delta.kind == SubgraphDelta::Kind::kAdded) {
      EXPECT_EQ(mirror.count(hash), 0u);
      mirror.emplace(hash, std::move(delta.subgraph));
    } else {
      EXPECT_EQ(mirror.count(hash), 1u);
      mirror.erase(hash);
    }
    return true;
  };
  auto session = engine.OpenIncremental(*prepared, g, options);
  ASSERT_TRUE(session.ok());
  // The initial result is not streamed: seed the mirror from it.
  for (const PerfectSubgraph& pg : session->CurrentMatches()) {
    mirror.emplace(pg.ContentHash(), pg);
  }

  Rng rng(33);
  for (int step = 0; step < 20; ++step) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (a == b) continue;
    if (rng.Bernoulli(0.6)) {
      (void)session->InsertEdge(a, b);
    } else {
      (void)session->RemoveEdge(a, b);
    }
    std::vector<PerfectSubgraph> mirrored;
    for (const auto& [hash, pg] : mirror) mirrored.push_back(pg);
    EXPECT_EQ(CanonicalResult(mirrored),
              CanonicalResult(session->CurrentMatches()));
  }
}

TEST(IncrementalSessionTest, SinkStopMutesStreamButUpdatesContinue) {
  Engine engine;
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  size_t delivered = 0;
  IncrementalOptions options;
  options.delta_sink = [&delivered](SubgraphDelta&&) {
    ++delivered;
    return false;  // stop after the first delivery
  };
  auto session = engine.OpenIncremental(*prepared, g, options);
  ASSERT_TRUE(session.ok());

  ASSERT_TRUE(session->InsertEdge(0, 1).ok());
  EXPECT_EQ(delivered, 1u);
  EXPECT_TRUE(session->sink_stopped());
  // Updates keep applying; the stream stays mute.
  ASSERT_TRUE(session->InsertEdge(2, 3).ok());
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(session->CurrentMatches().size(), 2u);
  ExpectConsistent(*session);
}

TEST(IncrementalSessionTest, SnapshotIsMemoizedPerDataVersion) {
  Engine engine;
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto session = engine.OpenIncremental(*prepared, g);
  ASSERT_TRUE(session.ok());

  // Unchanged session: the same materialized Graph (same identity).
  auto first = session->Snapshot();
  auto again = session->Snapshot();
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(first->instance_id(), again->instance_id());

  const uint64_t version_before = session->data_version();
  ASSERT_TRUE(session->InsertEdge(2, 1).ok());
  EXPECT_GT(session->data_version(), version_before);
  auto after = session->Snapshot();
  EXPECT_NE(first.get(), after.get());
  EXPECT_NE(first->instance_id(), after->instance_id());
  EXPECT_EQ(after->num_edges(), 2u);
}

// The cache-integration story end to end: repeated engine matches against
// an unchanged session share cache entries; a mutation re-keys them via
// the fresh snapshot identity, so no stale result can be served.
TEST(IncrementalSessionTest, SnapshotsIntegrateWithEngineCaches) {
  Engine engine;
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  auto session = engine.OpenIncremental(*prepared, g);
  ASSERT_TRUE(session.ok());

  MatchRequest request;
  request.algo = Algo::kStrong;
  auto cold = engine.Match(*prepared, *session->Snapshot(), request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->stats.result_cache_hits, 0u);
  auto warm = engine.Match(*prepared, *session->Snapshot(), request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.result_cache_hits, 1u);
  EXPECT_EQ(warm->subgraphs.size(), cold->subgraphs.size());

  // Mutate: the next snapshot is a different graph; the result cache
  // must miss and the fresh answer must reflect the update.
  ASSERT_TRUE(session->InsertEdge(2, 1).ok());
  auto fresh = engine.Match(*prepared, *session->Snapshot(), request);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->stats.result_cache_hits, 0u);
  EXPECT_EQ(fresh->subgraphs.size(), session->CurrentMatches().size());
}

}  // namespace
}  // namespace gpm
