#include "extensions/incremental.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

// The maintained result must always equal a from-scratch MatchStrong on
// the current graph.
void ExpectConsistent(const IncrementalMatcher& matcher) {
  auto scratch = MatchStrong(matcher.pattern(), matcher.data());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(CanonicalResult(matcher.CurrentMatches()),
            CanonicalResult(*scratch));
}

TEST(IncrementalTest, CreateRunsInitialMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
}

TEST(IncrementalTest, CreateRejectsBadPattern) {
  Graph q = MakeGraph({1, 2}, {});
  Graph g = MakeGraph({1}, {});
  EXPECT_TRUE(IncrementalMatcher::Create(q, g).status().IsInvalidArgument());
}

TEST(IncrementalTest, InsertCreatesMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {});  // no edge yet
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->CurrentMatches().empty());
  ASSERT_TRUE(matcher->InsertEdge(0, 1).ok());
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
}

TEST(IncrementalTest, RemoveDestroysMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  ASSERT_TRUE(matcher->RemoveEdge(0, 1).ok());
  ExpectConsistent(*matcher);
  EXPECT_TRUE(matcher->CurrentMatches().empty());
}

TEST(IncrementalTest, EdgeValidation) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->InsertEdge(0, 9).IsInvalidArgument());
  EXPECT_TRUE(matcher->InsertEdge(0, 1).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(matcher->RemoveEdge(1, 0).IsNotFound());
}

TEST(IncrementalTest, AddNodeMatchesSingleNodePattern) {
  Graph q = MakeGraph({7}, {});
  Graph g = MakeGraph({8}, {});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->CurrentMatches().empty());
  const NodeId v = matcher->AddNode(7);
  EXPECT_EQ(v, 1u);
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
}

TEST(IncrementalTest, RandomUpdateSequenceStaysConsistent) {
  Graph g = MakeUniform(80, 1.25, 3, 11);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 12);
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ExpectConsistent(*matcher);

  Rng rng(13);
  size_t applied = 0;
  for (int step = 0; step < 25; ++step) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (a == b) continue;
    if (rng.Bernoulli(0.5)) {
      if (matcher->InsertEdge(a, b).ok()) ++applied;
    } else {
      if (matcher->RemoveEdge(a, b).ok()) ++applied;
    }
    ExpectConsistent(*matcher);
  }
  EXPECT_GT(applied, 0u);
}

TEST(IncrementalTest, UpdatesTouchOnlyNearbyCenters) {
  // On a sparse graph, the locality argument keeps the affected-center
  // count far below |V|.
  Graph g = MakeAmazonLike(3000, 17);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 18);
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ASSERT_TRUE(matcher->InsertEdge(10, 20).ok() ||
              matcher->InsertEdge(10, 21).ok());
  const auto& stats = matcher->last_update();
  EXPECT_GT(stats.affected_centers, 0u);
  EXPECT_LT(stats.affected_centers, stats.total_centers / 2);
}

}  // namespace
}  // namespace gpm
