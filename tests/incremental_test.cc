#include "extensions/incremental.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generator.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

// The maintained result must always equal a from-scratch MatchStrong on
// the current graph.
void ExpectConsistent(const IncrementalMatcher& matcher) {
  auto scratch = MatchStrong(matcher.pattern(), matcher.Snapshot());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(CanonicalResult(matcher.CurrentMatches()),
            CanonicalResult(*scratch));
}

TEST(IncrementalTest, CreateRunsInitialMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
}

TEST(IncrementalTest, CreateRejectsBadPattern) {
  Graph q = MakeGraph({1, 2}, {});
  Graph g = MakeGraph({1}, {});
  EXPECT_TRUE(IncrementalMatcher::Create(q, g).status().IsInvalidArgument());
}

TEST(IncrementalTest, InsertCreatesMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {});  // no edge yet
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->CurrentMatches().empty());
  MatchDelta delta;
  ASSERT_TRUE(matcher->InsertEdge(0, 1, 0, &delta).ok());
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  EXPECT_EQ(delta.added.size(), 1u);
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(matcher->last_update().subgraphs_added, 1u);
}

TEST(IncrementalTest, RemoveDestroysMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  MatchDelta delta;
  ASSERT_TRUE(matcher->RemoveEdge(0, 1, 0, &delta).ok());
  ExpectConsistent(*matcher);
  EXPECT_TRUE(matcher->CurrentMatches().empty());
  EXPECT_TRUE(delta.added.empty());
  EXPECT_EQ(delta.removed.size(), 1u);
}

TEST(IncrementalTest, EdgeValidation) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->InsertEdge(0, 9).IsInvalidArgument());
  EXPECT_TRUE(matcher->InsertEdge(0, 1).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(matcher->RemoveEdge(1, 0).IsNotFound());
}

// The duplicate check is label-sensitive: a parallel edge under a new
// edge label is a new edge of the multigraph, not AlreadyExists — and
// RemoveEdge finds exactly the labeled edge it is asked for.
TEST(IncrementalTest, LabeledParallelEdges) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g;
  g.AddNode(1);
  g.AddNode(2);
  g.AddEdge(0, 1, /*label=*/7);
  g.Finalize();
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);

  // Same endpoints, different label: accepted.
  ASSERT_TRUE(matcher->InsertEdge(0, 1, 3).ok());
  ExpectConsistent(*matcher);
  // Exact duplicate of either labeled edge: rejected.
  EXPECT_EQ(matcher->InsertEdge(0, 1, 7).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(matcher->InsertEdge(0, 1, 3).code(), StatusCode::kAlreadyExists);
  // Removing a label that was never inserted: NotFound.
  EXPECT_TRUE(matcher->RemoveEdge(0, 1, 5).IsNotFound());

  // Removing one labeled edge leaves the parallel one (and the match).
  ASSERT_TRUE(matcher->RemoveEdge(0, 1, 7).ok());
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  ASSERT_TRUE(matcher->RemoveEdge(0, 1, 3).ok());
  ExpectConsistent(*matcher);
  EXPECT_TRUE(matcher->CurrentMatches().empty());
}

TEST(IncrementalTest, AddNodeMatchesSingleNodePattern) {
  Graph q = MakeGraph({7}, {});
  Graph g = MakeGraph({8}, {});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  EXPECT_TRUE(matcher->CurrentMatches().empty());
  const NodeId v = matcher->AddNode(7);
  EXPECT_EQ(v, 1u);
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  // The update's wall clock is measured (a tiny repair may round to 0 on
  // a coarse clock; the measured-not-hardcoded property is asserted on a
  // larger update in UpdatesTouchOnlyNearbyCenters).
  EXPECT_GE(matcher->last_update().seconds, 0.0);
  EXPECT_EQ(matcher->last_update().affected_centers, 1u);
  EXPECT_EQ(matcher->last_update().total_centers, 2u);
}

// affected_centers counts balls actually recomputed: centers whose label
// does not occur in the pattern are skipped by RecomputeCenters and must
// not inflate the reported saving.
TEST(IncrementalTest, AffectedCentersCountsOnlyRecomputedBalls) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  // A star of label-9 nodes (absent from the pattern) around one label-1
  // hub: recomputing near the hub touches many candidates but few balls.
  Graph g;
  const NodeId hub = g.AddNode(1);
  const NodeId partner = g.AddNode(2);
  g.AddEdge(hub, partner);
  for (int i = 0; i < 6; ++i) {
    const NodeId leaf = g.AddNode(9);
    g.AddEdge(hub, leaf);
  }
  g.Finalize();
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());

  ASSERT_TRUE(matcher->InsertEdge(2, 3).ok());  // between two leaves
  const auto& stats = matcher->last_update();
  // Candidates: the two leaves and the hub (radius 1 of the endpoints);
  // recomputed balls: only the pattern-labeled hub.
  EXPECT_EQ(stats.candidate_centers, 3u);
  EXPECT_EQ(stats.affected_centers, 1u);
  ExpectConsistent(*matcher);
}

TEST(IncrementalTest, BatchRecomputesSharedCentersOnce) {
  Graph g = MakeGraph({0, 1, 2, 0, 1, 2}, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 8);

  // The same three edits, batched vs one by one on twin matchers; the
  // edge edits share node 3's neighborhood.
  const std::vector<GraphEdit> edits = {
      GraphEdit::InsertEdge(1, 3),
      GraphEdit::InsertEdge(2, 3),
      GraphEdit::AddNode(1),
  };
  auto batched = IncrementalMatcher::Create(q, g);
  auto stepped = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(batched.ok() && stepped.ok());

  ASSERT_TRUE(batched->ApplyBatch(edits).ok());
  size_t stepped_affected = 0;
  ASSERT_TRUE(stepped->InsertEdge(1, 3).ok());
  stepped_affected += stepped->last_update().affected_centers;
  ASSERT_TRUE(stepped->InsertEdge(2, 3).ok());
  stepped_affected += stepped->last_update().affected_centers;
  stepped->AddNode(1);
  stepped_affected += stepped->last_update().affected_centers;

  ExpectConsistent(*batched);
  EXPECT_EQ(CanonicalResult(batched->CurrentMatches()),
            CanonicalResult(stepped->CurrentMatches()));
  // Overlapping neighborhoods (edits share node 3) are recomputed once.
  EXPECT_LT(batched->last_update().affected_centers, stepped_affected);
}

TEST(IncrementalTest, BatchStopsAtInvalidEditButStaysConsistent) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());

  const std::vector<GraphEdit> edits = {
      GraphEdit::InsertEdge(0, 1),   // applies, creates a match
      GraphEdit::InsertEdge(0, 99),  // invalid endpoint: batch stops here
      GraphEdit::InsertEdge(2, 3),   // never applied
  };
  const Status s = matcher->ApplyBatch(edits);
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("#1"), std::string::npos);
  // The applied prefix was repaired: maintained == from-scratch.
  ExpectConsistent(*matcher);
  EXPECT_EQ(matcher->CurrentMatches().size(), 1u);
  EXPECT_FALSE(matcher->data().HasEdge(2, 3));

  // A fully-rejected batch mutates nothing and — like a rejected single
  // edit — leaves the previous real update's stats in place.
  const auto stats_before = matcher->last_update();
  MatchDelta delta;
  delta.added.push_back({});  // stale content the call must clear
  const std::vector<GraphEdit> all_bad = {GraphEdit::InsertEdge(0, 99)};
  EXPECT_TRUE(matcher->ApplyBatch(all_bad, &delta).IsInvalidArgument());
  EXPECT_TRUE(delta.Empty());
  EXPECT_EQ(matcher->last_update().affected_centers,
            stats_before.affected_centers);
  EXPECT_EQ(matcher->last_update().candidate_centers,
            stats_before.candidate_centers);
  ExpectConsistent(*matcher);
}

TEST(IncrementalTest, DeltaIsNetChange) {
  // Two disjoint (1)->(2) pairs: inserting the second pair's edge adds a
  // subgraph whose content differs; re-removing it retracts exactly it.
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {{0, 1}});
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ASSERT_EQ(matcher->CurrentMatches().size(), 1u);

  MatchDelta delta;
  ASSERT_TRUE(matcher->InsertEdge(2, 3, 0, &delta).ok());
  ASSERT_EQ(delta.added.size(), 1u);
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(delta.added[0].center, 2u);

  ASSERT_TRUE(matcher->RemoveEdge(2, 3, 0, &delta).ok());
  EXPECT_TRUE(delta.added.empty());
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].center, 2u);
  ExpectConsistent(*matcher);
}

TEST(IncrementalTest, RandomUpdateSequenceStaysConsistent) {
  Graph g = MakeUniform(80, 1.25, 3, 11);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 12);
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ExpectConsistent(*matcher);

  Rng rng(13);
  size_t applied = 0;
  for (int step = 0; step < 25; ++step) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.Uniform(g.num_nodes()));
    if (a == b) continue;
    if (rng.Bernoulli(0.5)) {
      if (matcher->InsertEdge(a, b).ok()) ++applied;
    } else {
      if (matcher->RemoveEdge(a, b).ok()) ++applied;
    }
    ExpectConsistent(*matcher);
  }
  EXPECT_GT(applied, 0u);
}

TEST(IncrementalTest, UpdatesTouchOnlyNearbyCenters) {
  // On a sparse graph, the locality argument keeps the affected-center
  // count far below |V|.
  Graph g = MakeAmazonLike(3000, 17);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 18);
  auto matcher = IncrementalMatcher::Create(q, g);
  ASSERT_TRUE(matcher.ok());
  ASSERT_TRUE(matcher->InsertEdge(10, 20).ok() ||
              matcher->InsertEdge(10, 21).ok());
  const auto& stats = matcher->last_update();
  EXPECT_GT(stats.affected_centers, 0u);
  EXPECT_LT(stats.affected_centers, stats.total_centers / 2);
  EXPECT_LE(stats.affected_centers, stats.candidate_centers);
  // A repair of this size takes far more than one clock tick: the update
  // time is measured, never hardcoded.
  EXPECT_GT(stats.seconds, 0.0);
}

}  // namespace
}  // namespace gpm
