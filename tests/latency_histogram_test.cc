// LatencyHistogram: bucket-index bounds across the full uint64 range,
// quantile accuracy against exact sorted data, merge, and concurrent
// recording.

#include "serving/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"

namespace gpm::serving {
namespace {

TEST(LatencyHistogramTest, BucketIndexStaysInRangeAndIsMonotonic) {
  size_t prev = 0;
  for (uint64_t nanos :
       {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{17},
        uint64_t{1000}, uint64_t{123456}, uint64_t{1} << 32,
        (uint64_t{1} << 63) + 5, ~uint64_t{0}}) {
    const size_t index = LatencyHistogram::BucketIndex(nanos);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets) << "nanos=" << nanos;
    EXPECT_GE(index, prev) << "nanos=" << nanos;
    prev = index;
  }
  // The extreme value must land in the last bucket exactly.
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, BucketMidIsInsideItsOwnBucket) {
  for (size_t index = 0; index < LatencyHistogram::kNumBuckets; ++index) {
    const uint64_t mid = LatencyHistogram::BucketMidNanos(index);
    EXPECT_EQ(LatencyHistogram::BucketIndex(mid), index) << "index=" << index;
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t nanos = 0; nanos < 16; ++nanos) h.RecordNanos(nanos);
  EXPECT_EQ(h.count(), 16u);
  // p50 over 0..15 (nearest-rank, rank 8) is the value 7, stored exactly.
  EXPECT_NEAR(h.Quantile(0.5), 7e-9, 1e-15);
}

TEST(LatencyHistogramTest, QuantilesWithinRelativeErrorBound) {
  // Log-uniform latencies from 1us to 1s: the histogram's quantiles must
  // track the exact sorted-vector quantiles within the bucket width
  // (1/16 of magnitude, so <= ~6.25% relative error).
  Rng rng(99);
  LatencyHistogram h;
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double log10_seconds = -6.0 + 6.0 * rng.NextDouble();
    const double seconds = std::pow(10.0, log10_seconds);
    exact.push_back(seconds);
    h.Record(seconds);
  }
  std::sort(exact.begin(), exact.end());
  for (double q : {0.50, 0.90, 0.95, 0.99}) {
    const double approx = h.Quantile(q);
    const double truth =
        exact[static_cast<size_t>(q * (exact.size() - 1))];
    EXPECT_NEAR(approx, truth, truth * 0.07) << "q=" << q;
  }
  const auto summary = h.Summarize();
  EXPECT_EQ(summary.count, 20000u);
  EXPECT_GE(summary.p95_seconds, summary.p50_seconds);
  EXPECT_GE(summary.p99_seconds, summary.p95_seconds);
  EXPECT_GE(summary.max_seconds, summary.p99_seconds);
  EXPECT_GT(summary.mean_seconds, 0);
}

TEST(LatencyHistogramTest, MergeFoldsCountsAndMax) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.RecordNanos(1000);
  for (int i = 0; i < 100; ++i) b.RecordNanos(8000);
  b.RecordNanos(1000000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 201u);
  const auto summary = a.Summarize();
  EXPECT_NEAR(summary.max_seconds, 1e-3, 1e-4);
  // Median of {100x1us, 100x8us, 1x1ms} sits in the 1us bucket.
  EXPECT_NEAR(summary.p50_seconds, 1e-6, 1e-7);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.RecordNanos(static_cast<uint64_t>(t + 1) * 1000 +
                      static_cast<uint64_t>(i % 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const auto summary = h.Summarize();
  EXPECT_GT(summary.mean_seconds, 0);
  EXPECT_GE(summary.max_seconds, 4e-6);
}

}  // namespace
}  // namespace gpm::serving
