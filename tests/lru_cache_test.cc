// LruCache semantics the engine's serving path leans on: LRU order and
// eviction, capacity-1 thrash, the disabled (capacity-0) mode, pointer
// stability across eviction/Clear, stats monotonicity
// (hits + misses == lookups), and mutex-level thread safety.

#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace gpm {
namespace {

TEST(LruCacheTest, GetReturnsWhatPutStored) {
  LruCache<int, std::string> cache(4);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, "one");
  auto hit = cache.Get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "one");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_NE(cache.Get(1), nullptr);  // refresh 1; 2 is now LRU
  cache.Put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(LruCacheTest, PutOverwritesInPlace) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(1, 11);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(cache.Stats().evictions, 0u);
}

TEST(LruCacheTest, CapacityOneThrash) {
  // Alternating keys through a one-slot cache: every Get misses, every
  // Put evicts, and nothing ever corrupts — the degenerate serving setup.
  LruCache<int, int> cache(1);
  for (int round = 0; round < 100; ++round) {
    const int key = round % 2;
    EXPECT_EQ(cache.Get(key), nullptr) << "round " << round;
    auto stored = cache.Put(key, round);
    EXPECT_EQ(*stored, round);
    auto hit = cache.Get(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, round);
  }
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 99u);  // every Put after the first evicts
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_EQ(stats.hits, 100u);
  EXPECT_EQ(stats.misses, 100u);
}

TEST(LruCacheTest, CapacityZeroDisables) {
  LruCache<int, int> cache(0);
  auto stored = cache.Put(1, 10);
  ASSERT_NE(stored, nullptr);  // caller still gets a usable pointer
  EXPECT_EQ(*stored, 10);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().inserts, 0u);
}

TEST(LruCacheTest, PointersSurviveEvictionAndClear) {
  LruCache<int, std::string> cache(1);
  auto held = cache.Put(1, "held");
  cache.Put(2, "evictor");  // evicts key 1
  cache.Clear();
  EXPECT_EQ(*held, "held");  // outstanding pointer unaffected
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(LruCacheTest, StatsMonotonicityUnderConcurrentTraffic) {
  // 8 threads hammer 32 keys through an 8-slot cache: mixed hits, misses,
  // evictions. The invariant hits + misses == lookups must hold exactly,
  // and every hit must carry the value its key was stored with.
  LruCache<int, int> cache(8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong_values, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key = (t * 7 + i * 13) % 32;
        if (auto hit = cache.Get(key)) {
          if (*hit != key * 100) wrong_values.fetch_add(1);
        } else {
          cache.Put(key, key * 100);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_values.load(), 0);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups, stats.hits + stats.misses);
  EXPECT_EQ(stats.lookups,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.entries, 8u);
}

}  // namespace
}  // namespace gpm
