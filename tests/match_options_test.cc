// Focused tests of MatchOptions interactions and MatchStats reporting —
// the knobs the ablation bench turns, pinned down individually.

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

TEST(MatchOptionsTest, MatchPlusEnablesEverything) {
  const MatchOptions options = MatchPlusOptions();
  EXPECT_TRUE(options.minimize_query);
  EXPECT_TRUE(options.dual_filter);
  EXPECT_TRUE(options.connectivity_pruning);
  EXPECT_TRUE(options.dedup);
}

TEST(MatchOptionsTest, MinimizationReportsMinimizedSize) {
  // Pattern with twin branches: minQ must shrink it and the stats must
  // say so.
  Graph q = MakeGraph({9, 1, 2, 1, 2}, {{0, 1}, {1, 2}, {0, 3}, {3, 4}});
  Graph g = MakeGraph({9, 1, 2}, {{0, 1}, {1, 2}});
  MatchOptions options;
  options.minimize_query = true;
  MatchStats stats;
  auto result = MatchStrong(q, g, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.minimized_pattern_size, 3u + 2u);
  // The relation must still be expressed over the ORIGINAL 5 query nodes.
  ASSERT_FALSE(result->empty());
  EXPECT_EQ((*result)[0].relation.sim.size(), q.num_nodes());
}

TEST(MatchOptionsTest, MinimizedTwinsGetIdenticalMatches) {
  Graph q = MakeGraph({9, 1, 2, 1, 2}, {{0, 1}, {1, 2}, {0, 3}, {3, 4}});
  Graph g = MakeGraph({9, 1, 2}, {{0, 1}, {1, 2}});
  MatchOptions options;
  options.minimize_query = true;
  auto result = MatchStrong(q, g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  // Twin query nodes 1/3 and 2/4 collapse to one class each, so their
  // match lists coincide (Lemma 2).
  EXPECT_EQ((*result)[0].relation.sim[1], (*result)[0].relation.sim[3]);
  EXPECT_EQ((*result)[0].relation.sim[2], (*result)[0].relation.sim[4]);
}

TEST(MatchOptionsTest, FilterShortCircuitsOnGlobalMiss) {
  // No label-3 node anywhere: the global dual filter must answer without
  // building a single ball.
  Graph q = MakeGraph({1, 3}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}, {2, 1}});
  MatchOptions options;
  options.dual_filter = true;
  MatchStats stats;
  auto result = MatchStrong(q, g, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(stats.balls_considered, 0u);
  EXPECT_EQ(stats.balls_skipped_filter, g.num_nodes());
}

TEST(MatchOptionsTest, FilterSecondsAreRecorded) {
  Graph g = MakeUniform(300, 1.25, 3, 3);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 4);
  MatchOptions options;
  options.dual_filter = true;
  MatchStats stats;
  ASSERT_TRUE(MatchStrong(q, g, options, &stats).ok());
  EXPECT_GE(stats.global_filter_seconds, 0.0);
  EXPECT_LE(stats.global_filter_seconds, stats.total_seconds);
}

TEST(MatchOptionsTest, RadiusOverrideAppliesWithAllOptimizations) {
  Graph q = MakeGraph({1, 1}, {{0, 1}});
  Graph g = MakeGraph({1, 1, 1, 1, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  for (int mask = 0; mask < 8; ++mask) {
    MatchOptions options;
    options.minimize_query = mask & 1;
    options.dual_filter = mask & 2;
    options.connectivity_pruning = mask & 4;
    options.radius_override = 4;
    auto result = MatchStrong(q, g, options);
    ASSERT_TRUE(result.ok());
    size_t max_size = 0;
    for (const auto& pg : *result) max_size = std::max(max_size, pg.nodes.size());
    EXPECT_EQ(max_size, 5u) << "mask " << mask;
    for (const auto& pg : *result) EXPECT_EQ(pg.radius, 4u);
  }
}

TEST(MatchOptionsTest, DuplicatesRemovedCountsMatchDedup) {
  paper::Example ex = paper::Fig1();
  MatchStats raw_stats, dedup_stats;
  MatchOptions raw;
  raw.dedup = false;
  auto with_dups = MatchStrong(ex.pattern, ex.data, raw, &raw_stats);
  auto deduped = MatchStrong(ex.pattern, ex.data, {}, &dedup_stats);
  ASSERT_TRUE(with_dups.ok());
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(with_dups->size(),
            deduped->size() + dedup_stats.duplicates_removed);
  EXPECT_EQ(raw_stats.duplicates_removed, 0u);
}

TEST(MatchOptionsTest, SubgraphsFoundCountsPostDedup) {
  paper::Example ex = paper::Fig1();
  MatchStats stats;
  ASSERT_TRUE(MatchStrong(ex.pattern, ex.data, {}, &stats).ok());
  // Gc has 7 nodes; each of its nodes is a ball center yielding the same
  // perfect subgraph. subgraphs_found counts emitted (post-dedup) results
  // — the policy-independent number — and the raw per-ball count is
  // subgraphs_found + duplicates_removed.
  EXPECT_EQ(stats.subgraphs_found, 1u);
  EXPECT_EQ(stats.duplicates_removed, 6u);

  MatchOptions raw;
  raw.dedup = false;
  MatchStats raw_stats;
  ASSERT_TRUE(MatchStrong(ex.pattern, ex.data, raw, &raw_stats).ok());
  EXPECT_EQ(raw_stats.subgraphs_found, 7u);
  EXPECT_EQ(raw_stats.duplicates_removed, 0u);
}

TEST(MatchOptionsTest, FilterAndPruningComposeOnPaperExample) {
  paper::Example ex = paper::Fig1();
  const auto canonical = CanonicalResult(*MatchStrong(ex.pattern, ex.data));
  MatchOptions both;
  both.dual_filter = true;
  both.connectivity_pruning = true;
  MatchStats stats;
  auto result = MatchStrong(ex.pattern, ex.data, both, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CanonicalResult(*result), canonical);
  // Components 1 and 2 of G1 die in the global filter: only Gc's 7 nodes
  // get balls.
  EXPECT_EQ(stats.balls_considered, 7u);
  EXPECT_EQ(stats.balls_skipped_filter, ex.data.num_nodes() - 7u);
}

TEST(MatchOptionsTest, PatternDiameterAlwaysReported) {
  paper::Example ex = paper::Fig2Q4();
  for (bool minimize : {false, true}) {
    MatchOptions options;
    options.minimize_query = minimize;
    MatchStats stats;
    ASSERT_TRUE(MatchStrong(ex.pattern, ex.data, options, &stats).ok());
    EXPECT_EQ(stats.pattern_diameter, 2u);
  }
}

}  // namespace
}  // namespace gpm
