#include "isomorphism/mcs.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(McsSizeTest, IdenticalGraphsGiveFullSize) {
  Graph a = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  EXPECT_EQ(ApproximateMcsSize(a, a), 3u);
}

TEST(McsSizeTest, DisjointLabelsGiveZero) {
  Graph a = MakeGraph({1, 2}, {{0, 1}});
  Graph b = MakeGraph({3, 4}, {{0, 1}});
  EXPECT_EQ(ApproximateMcsSize(a, b), 0u);
}

TEST(McsSizeTest, PartialOverlap) {
  // Common induced part: a->b (2 nodes); the c-branches differ by label.
  Graph a = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  Graph b = MakeGraph({1, 2, 9}, {{0, 1}, {1, 2}});
  size_t size = ApproximateMcsSize(a, b);
  EXPECT_EQ(size, 2u);
}

TEST(McsSizeTest, NeverExceedsEitherGraph) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph a = MakeUniform(12, 1.2, 3, seed);
    Graph b = MakeUniform(15, 1.2, 3, seed + 50);
    size_t size = ApproximateMcsSize(a, b);
    EXPECT_LE(size, a.num_nodes());
    EXPECT_LE(size, b.num_nodes());
  }
}

TEST(McsSizeTest, SubgraphOfItselfIsLowerBounded) {
  // The greedy grows one *connected* common subgraph, so compare a
  // connected graph with itself: identity pairs are always available and
  // the degree-ordered pass should recover at least half the nodes.
  std::vector<Label> pool{0, 1};
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph a = RandomPattern(10, 1.25, pool, seed);
    EXPECT_GE(ApproximateMcsSize(a, a), a.num_nodes() / 2) << "seed " << seed;
  }
}

TEST(McsMatchTest, ExactCopyClearsThreshold) {
  Graph q = MakeGraph({1, 2, 3, 4}, {{0, 1}, {1, 2}, {2, 3}});
  // Data = the same chain plus distractor nodes.
  Graph g = MakeGraph({1, 2, 3, 4, 9, 9},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  auto matches = McsMatch(q, g);
  EXPECT_FALSE(matches.empty());
}

TEST(McsMatchTest, ThresholdRejectsWeakCandidates) {
  // Data shares only 1 of 4 labels: ratio 0.25 < 0.7.
  Graph q = MakeGraph({1, 2, 3, 4}, {{0, 1}, {1, 2}, {2, 3}});
  Graph g = MakeGraph({1, 8, 8, 8}, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(McsMatch(q, g).empty());
}

TEST(McsMatchTest, ThresholdIsMonotone) {
  Graph g = MakeAmazonLike(800, 21);
  Rng rng(22);
  auto q = ExtractPattern(g, 5, &rng);
  ASSERT_TRUE(q.ok());
  McsOptions loose;
  loose.threshold = 0.5;
  McsOptions tight;
  tight.threshold = 0.9;
  EXPECT_GE(McsMatch(*q, g, loose).size(), McsMatch(*q, g, tight).size());
}

TEST(McsMatchTest, SeedCapBoundsWork) {
  Graph g = MakeAmazonLike(2000, 23);
  Rng rng(24);
  auto q = ExtractPattern(g, 5, &rng);
  ASSERT_TRUE(q.ok());
  McsOptions capped;
  capped.max_seeds = 10;
  EXPECT_LE(McsMatch(*q, g, capped).size(), 10u);
}

}  // namespace
}  // namespace gpm
