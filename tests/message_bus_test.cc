#include "distributed/message_bus.h"

#include <gtest/gtest.h>

#include <thread>

#include "distributed/fragment.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

TEST(MessageBusTest, DeliversToMailbox) {
  MessageBus bus(2);
  bus.Send(0, 1, MessageKind::kNodeRequest, "abc");
  auto inbox = bus.Drain(1);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 0u);
  EXPECT_EQ(inbox[0].payload, "abc");
  EXPECT_TRUE(bus.Drain(1).empty());  // drained
  EXPECT_TRUE(bus.Drain(0).empty());  // wrong mailbox untouched
}

TEST(MessageBusTest, CountsBytesByKind) {
  MessageBus bus(2);
  bus.Send(0, 1, MessageKind::kNodeRequest, "1234");
  bus.Send(1, 0, MessageKind::kNodeRecords, "123456");
  bus.Send(0, bus.coordinator_id(), MessageKind::kPartialResult, "12");
  EXPECT_EQ(bus.BytesOf(MessageKind::kNodeRequest), 4u);
  EXPECT_EQ(bus.BytesOf(MessageKind::kNodeRecords), 6u);
  EXPECT_EQ(bus.BytesOf(MessageKind::kPartialResult), 2u);
  EXPECT_EQ(bus.TotalBytes(), 12u);
  EXPECT_EQ(bus.MessageCount(), 3u);
}

TEST(MessageBusTest, CoordinatorHasOwnMailbox) {
  MessageBus bus(3);
  EXPECT_EQ(bus.coordinator_id(), 3u);
  bus.Send(2, bus.coordinator_id(), MessageKind::kPartialResult, "x");
  EXPECT_EQ(bus.Drain(bus.coordinator_id()).size(), 1u);
}

TEST(MessageBusTest, ThreadSafeUnderConcurrentSends) {
  MessageBus bus(4);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&bus, t] {
      for (int i = 0; i < 1000; ++i) {
        bus.Send(t, (t + 1) % 4, MessageKind::kNodeRequest, "pp");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bus.MessageCount(), 4000u);
  EXPECT_EQ(bus.TotalBytes(), 8000u);
  size_t delivered = 0;
  for (uint32_t s = 0; s < 4; ++s) delivered += bus.Drain(s).size();
  EXPECT_EQ(delivered, 4000u);
}

TEST(FragmentWireTest, IdListRoundTrip) {
  std::vector<NodeId> ids{5, 17, 99, 0};
  auto decoded = Fragment::DecodeIdList(Fragment::EncodeIdList(ids));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, ids);
}

TEST(FragmentWireTest, IdListRejectsTruncation) {
  std::string blob = Fragment::EncodeIdList({1, 2, 3});
  blob.resize(blob.size() - 2);
  EXPECT_FALSE(Fragment::DecodeIdList(blob).ok());
}

TEST(FragmentWireTest, RecordsRoundTrip) {
  Graph g = testutil::MakeGraph({7, 8, 9}, {{0, 1}, {1, 2}, {2, 0}});
  PartitionAssignment p;
  p.num_fragments = 1;
  p.owner = {0, 0, 0};
  Fragment fragment(g, p, 0);
  auto decoded = Fragment::DecodeRecords(fragment.EncodeRecords({0, 1, 2}));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].second.label, 7u);
  EXPECT_EQ((*decoded)[0].second.out, (std::vector<NodeId>{1}));
  EXPECT_EQ((*decoded)[0].second.in, (std::vector<NodeId>{2}));
  // The default batch ships no edge labels (plain strong jobs don't pay
  // for what they never read).
  EXPECT_TRUE((*decoded)[0].second.out_labels.empty());
}

TEST(FragmentWireTest, RecordsRoundTripWithEdgeLabels) {
  Graph g;
  g.AddNode(7);
  g.AddNode(8);
  g.AddNode(9);
  g.AddEdge(0, 1, 5);
  g.AddEdge(1, 2, 6);
  g.AddEdge(2, 0, 7);
  g.Finalize();
  PartitionAssignment p;
  p.num_fragments = 1;
  p.owner = {0, 0, 0};
  Fragment fragment(g, p, 0);
  const std::string with = fragment.EncodeRecords({0, 1, 2},
                                                  /*with_edge_labels=*/true);
  const std::string without = fragment.EncodeRecords({0, 1, 2});
  EXPECT_GT(with.size(), without.size())
      << "labels must cost bytes only when asked for";
  auto decoded = Fragment::DecodeRecords(with);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].second.out_labels, (std::vector<EdgeLabel>{5}));
  EXPECT_EQ((*decoded)[1].second.out_labels, (std::vector<EdgeLabel>{6}));
  for (size_t cut = 0; cut < with.size(); cut += 7) {
    EXPECT_FALSE(Fragment::DecodeRecords(with.substr(0, cut)).ok());
  }
}

TEST(FragmentTest, OwnsOnlyAssignedNodes) {
  Graph g = testutil::MakeGraph({1, 1, 1, 1}, {{0, 1}, {2, 3}});
  PartitionAssignment p;
  p.num_fragments = 2;
  p.owner = {0, 0, 1, 1};
  Fragment f0(g, p, 0);
  EXPECT_EQ(f0.owned(), (std::vector<NodeId>{0, 1}));
  EXPECT_TRUE(f0.Knows(0));
  EXPECT_FALSE(f0.Knows(2));
  NodeRecord r;
  r.label = 1;
  f0.AddRecord(2, r);
  EXPECT_TRUE(f0.Knows(2));
}

}  // namespace
}  // namespace gpm
