#include "graph/mutable_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "graph/generator.h"
#include "graph/traversal.h"
#include "matching/ball.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(MutableGraphTest, CopiesFinalizedGraph) {
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {2, 0}});
  MutableGraph m(g);
  EXPECT_EQ(m.num_nodes(), 3u);
  EXPECT_EQ(m.num_edges(), 3u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(m.label(v), g.label(v));
    EXPECT_EQ(m.OutDegree(v), g.OutDegree(v));
    EXPECT_EQ(m.InDegree(v), g.InDegree(v));
  }
  EXPECT_TRUE(m.HasEdge(0, 1));
  EXPECT_FALSE(m.HasEdge(1, 0));
  EXPECT_TRUE(m.Snapshot().StructurallyEqual(g, /*compare_edge_labels=*/true));
}

TEST(MutableGraphTest, InsertAndRemoveMaintainBothDirections) {
  MutableGraph m(MakeGraph({1, 2, 3}, {}));
  ASSERT_TRUE(m.InsertEdge(0, 1).ok());
  ASSERT_TRUE(m.InsertEdge(2, 1).ok());
  EXPECT_EQ(m.num_edges(), 2u);
  EXPECT_EQ(m.InDegree(1), 2u);
  ASSERT_TRUE(m.RemoveEdge(0, 1).ok());
  EXPECT_EQ(m.num_edges(), 1u);
  EXPECT_EQ(m.InDegree(1), 1u);
  EXPECT_EQ(m.InNeighbors(1)[0], 2u);
  EXPECT_FALSE(m.HasEdge(0, 1));
}

TEST(MutableGraphTest, EdgeOperationsAreLabelSensitive) {
  MutableGraph m(MakeGraph({1, 2}, {}));
  ASSERT_TRUE(m.InsertEdge(0, 1, 7).ok());
  // Parallel edge with a different label: a new edge.
  ASSERT_TRUE(m.InsertEdge(0, 1, 3).ok());
  EXPECT_EQ(m.num_edges(), 2u);
  // Exact duplicate: rejected.
  EXPECT_EQ(m.InsertEdge(0, 1, 7).code(), StatusCode::kAlreadyExists);
  // Remove is exact too.
  EXPECT_TRUE(m.RemoveEdge(0, 1, 5).IsNotFound());
  ASSERT_TRUE(m.RemoveEdge(0, 1, 7).ok());
  EXPECT_TRUE(m.HasEdge(0, 1, 3));
  EXPECT_FALSE(m.HasEdge(0, 1, 7));
  EXPECT_TRUE(m.HasEdge(0, 1));
}

TEST(MutableGraphTest, ValidatesEndpoints) {
  MutableGraph m(MakeGraph({1}, {}));
  EXPECT_TRUE(m.InsertEdge(0, 5).IsInvalidArgument());
  EXPECT_TRUE(m.InsertEdge(5, 0).IsInvalidArgument());
  EXPECT_TRUE(m.RemoveEdge(0, 5).IsInvalidArgument());
}

TEST(MutableGraphTest, VersionCountsMutations) {
  MutableGraph m(MakeGraph({1, 2}, {}));
  const uint64_t v0 = m.version();
  ASSERT_TRUE(m.InsertEdge(0, 1).ok());
  EXPECT_EQ(m.version(), v0 + 1);
  // Rejected edits leave the version unchanged.
  EXPECT_FALSE(m.InsertEdge(0, 1).ok());
  EXPECT_EQ(m.version(), v0 + 1);
  m.AddNode(3);
  EXPECT_EQ(m.version(), v0 + 2);
  ASSERT_TRUE(m.RemoveEdge(0, 1).ok());
  EXPECT_EQ(m.version(), v0 + 3);
}

TEST(MutableGraphTest, SnapshotMatchesEquivalentImmutableGraph) {
  MutableGraph m(MakeGraph({1, 2}, {{0, 1}}));
  m.AddNode(3);
  ASSERT_TRUE(m.InsertEdge(1, 2, 4).ok());
  ASSERT_TRUE(m.InsertEdge(2, 0).ok());
  ASSERT_TRUE(m.RemoveEdge(0, 1).ok());
  const Graph expected =
      MakeGraph({1, 2, 3}, {{2, 0}});  // plus the labeled (1, 2) edge
  Graph snapshot = m.Snapshot();
  EXPECT_EQ(snapshot.num_nodes(), 3u);
  EXPECT_EQ(snapshot.num_edges(), 2u);
  EXPECT_TRUE(snapshot.HasEdge(1, 2));
  EXPECT_TRUE(snapshot.HasEdge(2, 0));
  EXPECT_FALSE(snapshot.HasEdge(0, 1));
  EXPECT_EQ(snapshot.OutEdgeLabels(1)[0], 4u);
}

// The generic BFS visits the same (node, distance) set over the mutable
// adjacency as over its finalized snapshot.
TEST(MutableGraphTest, BfsAgreesWithSnapshot) {
  Graph g = MakeAmazonLike(500, 5);
  MutableGraph m(g);
  ASSERT_TRUE(m.InsertEdge(1, 100).ok());
  if (m.OutDegree(2) > 0) {
    ASSERT_TRUE(
        m.RemoveEdge(2, m.OutNeighbors(2)[0], m.OutEdgeLabels(2)[0]).ok());
  }
  const Graph snapshot = m.Snapshot();
  for (NodeId source : {NodeId{0}, NodeId{1}, NodeId{100}, NodeId{250}}) {
    for (EdgeDirection direction :
         {EdgeDirection::kOut, EdgeDirection::kIn, EdgeDirection::kUndirected}) {
      std::set<std::pair<NodeId, uint32_t>> from_mutable, from_snapshot;
      for (const BfsEntry& e : Bfs(m, source, direction, 3)) {
        from_mutable.insert({e.node, e.distance});
      }
      for (const BfsEntry& e : Bfs(snapshot, source, direction, 3)) {
        from_snapshot.insert({e.node, e.distance});
      }
      EXPECT_EQ(from_mutable, from_snapshot);
    }
  }
}

// Balls built directly over the mutable adjacency have the same global
// content as balls over the snapshot (local ids may differ; content is
// what matching consumes).
TEST(MutableGraphTest, BallsAgreeWithSnapshot) {
  Graph g = MakeUniform(200, 1.2, 4, 9);
  MutableGraph m(g);
  ASSERT_TRUE(m.InsertEdge(3, 77).ok());
  const Graph snapshot = m.Snapshot();
  BallBuilderT<MutableGraph> mutable_builder(m);
  BallBuilder snapshot_builder(snapshot);
  Ball a, b;
  for (NodeId center = 0; center < 200; center += 17) {
    mutable_builder.Build(center, 2, &a);
    snapshot_builder.Build(center, 2, &b);
    std::set<NodeId> nodes_a(a.to_global.begin(), a.to_global.end());
    std::set<NodeId> nodes_b(b.to_global.begin(), b.to_global.end());
    EXPECT_EQ(nodes_a, nodes_b);
    const auto global_edges = [](const Ball& ball) {
      std::set<std::pair<NodeId, NodeId>> edges;
      for (NodeId u = 0; u < ball.graph.num_nodes(); ++u) {
        for (NodeId v : ball.graph.OutNeighbors(u)) {
          edges.insert({ball.to_global[u], ball.to_global[v]});
        }
      }
      return edges;
    };
    EXPECT_EQ(global_edges(a), global_edges(b));
    EXPECT_EQ(a.center, b.center);
  }
}

// A builder created before the graph grew keeps working (scratch grows on
// the next Build).
TEST(MutableGraphTest, BallBuilderSurvivesNodeGrowth) {
  MutableGraph m(MakeGraph({1, 2}, {{0, 1}}));
  BallBuilderT<MutableGraph> builder(m);
  Ball ball;
  builder.Build(0, 1, &ball);
  EXPECT_EQ(ball.to_global.size(), 2u);
  const NodeId added = m.AddNode(3);
  ASSERT_TRUE(m.InsertEdge(1, added).ok());
  builder.Build(added, 1, &ball);
  EXPECT_EQ(ball.to_global.size(), 2u);
  EXPECT_EQ(ball.center, added);
}

}  // namespace
}  // namespace gpm
