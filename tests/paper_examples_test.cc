// End-to-end checks of every claim the paper makes about its running
// examples (Example 1 / Fig. 1, Example 2 / Fig. 2, Example 4 / Fig. 6a,
// Examples 5-6 / Fig. 6b-c).

#include <gtest/gtest.h>

#include <set>

#include "graph/components.h"
#include "graph/diameter.h"
#include "graph/paper_graphs.h"
#include "matching/dual_simulation.h"
#include "matching/query_minimization.h"
#include "matching/simulation.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::AllNodes;
using testutil::MatchesOf;

// ---------------------------------------------------------------- Fig. 1 --

class Fig1Test : public ::testing::Test {
 protected:
  paper::Example ex_ = paper::Fig1();
};

TEST_F(Fig1Test, PatternDiameterIsThree) {
  auto d = Diameter(ex_.pattern);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 3u);
}

TEST_F(Fig1Test, DataGraphIsDisconnectedWithThreeComponents) {
  EXPECT_FALSE(IsConnected(ex_.data));
  EXPECT_EQ(ConnectedComponents(ex_.data).num_components, 3u);
}

TEST_F(Fig1Test, SimulationMatchesAllFourBiologists) {
  const MatchRelation s = ComputeSimulation(ex_.pattern, ex_.data);
  ASSERT_TRUE(s.IsTotal());
  const std::set<NodeId> bios = MatchesOf(s, ex_.PatternNode("Bio"));
  EXPECT_EQ(bios, (std::set<NodeId>{
                      ex_.DataNode("Bio1"), ex_.DataNode("Bio2"),
                      ex_.DataNode("Bio3"), ex_.DataNode("Bio4")}));
}

TEST_F(Fig1Test, SimulationMatchRelationCoversEntireGraph) {
  // "the match relation of simulation ... is the entire graph G1".
  const MatchRelation s = ComputeSimulation(ex_.pattern, ex_.data);
  EXPECT_EQ(testutil::AllMatchedNodes(s).size(), ex_.data.num_nodes());
}

TEST_F(Fig1Test, DualSimulationKeepsOnlyBio4Component) {
  const MatchRelation s = ComputeDualSimulation(ex_.pattern, ex_.data);
  ASSERT_TRUE(s.IsTotal());
  EXPECT_EQ(MatchesOf(s, ex_.PatternNode("Bio")),
            (std::set<NodeId>{ex_.DataNode("Bio4")}));
  EXPECT_EQ(MatchesOf(s, ex_.PatternNode("HR")),
            (std::set<NodeId>{ex_.DataNode("HR2")}));
  EXPECT_EQ(MatchesOf(s, ex_.PatternNode("SE")),
            (std::set<NodeId>{ex_.DataNode("SE2")}));
  EXPECT_EQ(MatchesOf(s, ex_.PatternNode("DM")),
            (std::set<NodeId>{ex_.DataNode("DM'1"), ex_.DataNode("DM'2")}));
  EXPECT_EQ(MatchesOf(s, ex_.PatternNode("AI")),
            (std::set<NodeId>{ex_.DataNode("AI'1"), ex_.DataNode("AI'2")}));
}

TEST_F(Fig1Test, StrongSimulationFindsExactlyGc) {
  auto result = MatchStrong(ex_.pattern, ex_.data);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u) << "Gc is the only perfect subgraph";
  const PerfectSubgraph& gc = (*result)[0];
  const std::set<NodeId> expected = {
      ex_.DataNode("HR2"),   ex_.DataNode("SE2"),  ex_.DataNode("Bio4"),
      ex_.DataNode("DM'1"),  ex_.DataNode("DM'2"), ex_.DataNode("AI'1"),
      ex_.DataNode("AI'2")};
  EXPECT_EQ(std::set<NodeId>(gc.nodes.begin(), gc.nodes.end()), expected);
  // Example 2(3): Bio in Q1 maps only to Bio4.
  EXPECT_EQ(MatchesOf(*result, ex_.PatternNode("Bio")),
            (std::set<NodeId>{ex_.DataNode("Bio4")}));
}

TEST_F(Fig1Test, StrongSimulationResultIsConnected) {
  auto result = MatchStrong(ex_.pattern, ex_.data);
  ASSERT_TRUE(result.ok());
  for (const auto& pg : *result) {
    EXPECT_TRUE(IsConnected(pg.AsGraph(ex_.data)));
  }
}

// ------------------------------------------------------------- Fig. 2 Q2 --

TEST(Fig2Q2Test, SimulationMatchesBothBooksButDualOnlyBook2) {
  paper::Example ex = paper::Fig2Q2();
  const NodeId book = ex.PatternNode("B");

  const MatchRelation sim = ComputeSimulation(ex.pattern, ex.data);
  EXPECT_EQ(MatchesOf(sim, book),
            (std::set<NodeId>{ex.DataNode("book1"), ex.DataNode("book2")}));

  const MatchRelation dual = ComputeDualSimulation(ex.pattern, ex.data);
  EXPECT_EQ(MatchesOf(dual, book), (std::set<NodeId>{ex.DataNode("book2")}));
}

TEST(Fig2Q2Test, StrongSimulationReturnsOneMatchGraphWithBook2) {
  paper::Example ex = paper::Fig2Q2();
  auto result = MatchStrong(ex.pattern, ex.data);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u)
      << "strong simulation returns the union as a single match graph";
  EXPECT_EQ(MatchesOf(*result, ex.PatternNode("B")),
            (std::set<NodeId>{ex.DataNode("book2")}));
  EXPECT_EQ(AllNodes(*result),
            (std::set<NodeId>{ex.DataNode("ST2"), ex.DataNode("ST3"),
                              ex.DataNode("TE1"), ex.DataNode("book2")}));
}

// ------------------------------------------------------------- Fig. 2 Q3 --

TEST(Fig2Q3Test, DualSimulationMatchesAllFourPeople) {
  paper::Example ex = paper::Fig2Q3();
  const MatchRelation dual = ComputeDualSimulation(ex.pattern, ex.data);
  EXPECT_EQ(testutil::AllMatchedNodes(dual).size(), 4u);
}

TEST(Fig2Q3Test, StrongSimulationExcludesP4ByLocality) {
  paper::Example ex = paper::Fig2Q3();
  auto result = MatchStrong(ex.pattern, ex.data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(AllNodes(*result),
            (std::set<NodeId>{ex.DataNode("P1"), ex.DataNode("P2"),
                              ex.DataNode("P3")}));
}

// ------------------------------------------------------------- Fig. 2 Q4 --

TEST(Fig2Q4Test, SimulationMatchesAllSNButDualOnlySN1SN2) {
  paper::Example ex = paper::Fig2Q4();
  const NodeId sn = ex.PatternNode("SN");

  const MatchRelation sim = ComputeSimulation(ex.pattern, ex.data);
  EXPECT_EQ(MatchesOf(sim, sn),
            (std::set<NodeId>{ex.DataNode("SN1"), ex.DataNode("SN2"),
                              ex.DataNode("SN3"), ex.DataNode("SN4")}));

  const MatchRelation dual = ComputeDualSimulation(ex.pattern, ex.data);
  EXPECT_EQ(MatchesOf(dual, sn),
            (std::set<NodeId>{ex.DataNode("SN1"), ex.DataNode("SN2")}));
}

TEST(Fig2Q4Test, StrongSimulationMatchesSN1AndSN2) {
  paper::Example ex = paper::Fig2Q4();
  auto result = MatchStrong(ex.pattern, ex.data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(MatchesOf(*result, ex.PatternNode("SN")),
            (std::set<NodeId>{ex.DataNode("SN1"), ex.DataNode("SN2")}));
}

// ------------------------------------------------------------- Fig. 6(a) --

TEST(Fig6aTest, MinQProducesTheFiveNodeQuotient) {
  paper::Example ex = paper::Fig6aQ5();  // data = Q5, pattern = expected Q5m
  auto mq = MinimizeQuery(ex.data);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ(mq->minimized.num_nodes(), 5u);
  EXPECT_EQ(mq->minimized.num_edges(), 4u);
  // B1/B2, C1/C2, D1/D2 collapse pairwise.
  EXPECT_EQ(mq->class_of[ex.DataNode("B1")], mq->class_of[ex.DataNode("B2")]);
  EXPECT_EQ(mq->class_of[ex.DataNode("C1")], mq->class_of[ex.DataNode("C2")]);
  EXPECT_EQ(mq->class_of[ex.DataNode("D1")], mq->class_of[ex.DataNode("D2")]);
  EXPECT_NE(mq->class_of[ex.DataNode("R")], mq->class_of[ex.DataNode("A")]);
}

// ---------------------------------------------------------- Fig. 6(b)(c) --

TEST(Fig6bTest, DualFilterOptionAgreesWithPlainMatch) {
  paper::Example ex = paper::Fig6bDualFilter();
  auto plain = MatchStrong(ex.pattern, ex.data);
  MatchOptions filter_only;
  filter_only.dual_filter = true;
  auto filtered = MatchStrong(ex.pattern, ex.data, filter_only);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(testutil::CanonicalResult(*plain),
            testutil::CanonicalResult(*filtered));
}

TEST(Fig6cTest, ConnectivityPruningAgreesWithPlainMatchAndSkipsWork) {
  paper::Example ex = paper::Fig6cPruning();
  MatchStats plain_stats, pruned_stats;
  auto plain = MatchStrong(ex.pattern, ex.data, {}, &plain_stats);
  MatchOptions prune_only;
  prune_only.connectivity_pruning = true;
  auto pruned = MatchStrong(ex.pattern, ex.data, prune_only, &pruned_stats);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(testutil::CanonicalResult(*plain),
            testutil::CanonicalResult(*pruned));
  // Pruning must reduce the candidate pairs fed into refinement.
  EXPECT_LT(pruned_stats.candidate_pairs_refined,
            plain_stats.candidate_pairs_refined);
}

}  // namespace
}  // namespace gpm
