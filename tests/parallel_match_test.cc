#include "matching/parallel_match.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "quality/workloads.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;

TEST(ParallelMatchTest, RejectsBadPattern) {
  Graph q = testutil::MakeGraph({1, 2}, {});
  Graph g = testutil::MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(MatchStrongParallel(q, g).status().IsInvalidArgument());
}

TEST(ParallelMatchTest, SingleThreadEqualsSequential) {
  paper::Example ex = paper::Fig1();
  auto seq = MatchStrong(ex.pattern, ex.data);
  auto par = MatchStrongParallel(ex.pattern, ex.data, {}, 1);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(CanonicalResult(*seq), CanonicalResult(*par));
}

TEST(ParallelMatchTest, ManyThreadsEqualSequentialAcrossOptions) {
  Graph g = MakeAmazonLike(800, 3);
  auto patterns = MakePatternWorkload(g, 5, 2, 4);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    for (int mask = 0; mask < 8; ++mask) {
      MatchOptions options;
      options.minimize_query = mask & 1;
      options.dual_filter = mask & 2;
      options.connectivity_pruning = mask & 4;
      auto seq = MatchStrong(q, g, options);
      auto par = MatchStrongParallel(q, g, options, 8);
      ASSERT_TRUE(seq.ok());
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(CanonicalResult(*seq), CanonicalResult(*par))
          << "option mask " << mask;
    }
  }
}

TEST(ParallelMatchTest, MoreThreadsThanCenters) {
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}});
  Graph g = testutil::MakeGraph({1, 2}, {{0, 1}});
  auto par = MatchStrongParallel(q, g, {}, 64);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->size(), 1u);
}

TEST(ParallelMatchTest, StatsAggregateAcrossShards) {
  Graph g = MakeUniform(300, 1.25, 3, 5);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 6);
  MatchStats seq_stats, par_stats;
  auto seq = MatchStrong(q, g, {}, &seq_stats);
  auto par = MatchStrongParallel(q, g, {}, 4, &par_stats);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par_stats.balls_considered, seq_stats.balls_considered);
  EXPECT_EQ(par_stats.subgraphs_found, seq_stats.subgraphs_found);
  EXPECT_EQ(par_stats.candidate_pairs_refined,
            seq_stats.candidate_pairs_refined);
}

TEST(ParallelMatchTest, ResultsSortedByCenter) {
  Graph g = MakeUniform(400, 1.3, 2, 9);
  std::vector<Label> pool{0, 1};
  Graph q = RandomPattern(3, 1.2, pool, 10);
  auto par = MatchStrongParallel(q, g, {}, 4);
  ASSERT_TRUE(par.ok());
  for (size_t i = 1; i < par->size(); ++i) {
    EXPECT_LT((*par)[i - 1].center, (*par)[i].center);
  }
}

TEST(ParallelMatchTest, DedupOffKeepsPerBallResults) {
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}});
  Graph g = testutil::MakeGraph({1, 2}, {{0, 1}});
  MatchOptions raw;
  raw.dedup = false;
  auto par = MatchStrongParallel(q, g, raw, 4);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(par->size(), 2u);  // one per matched center
}

}  // namespace
}  // namespace gpm
