#include "distributed/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

TEST(HashPartitionTest, CoversAllSitesAndNodes) {
  auto p = HashPartition(10000, 8, 1);
  EXPECT_EQ(p.owner.size(), 10000u);
  std::set<uint32_t> sites(p.owner.begin(), p.owner.end());
  EXPECT_EQ(sites.size(), 8u);
  for (uint32_t s : p.owner) EXPECT_LT(s, 8u);
}

TEST(HashPartitionTest, RoughlyBalanced) {
  auto p = HashPartition(80000, 4, 7);
  for (uint32_t s = 0; s < 4; ++s) {
    const size_t size = p.NodesOf(s).size();
    EXPECT_GT(size, 18000u);
    EXPECT_LT(size, 22000u);
  }
}

TEST(HashPartitionTest, DeterministicInSeed) {
  auto a = HashPartition(1000, 4, 5);
  auto b = HashPartition(1000, 4, 5);
  auto c = HashPartition(1000, 4, 6);
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_NE(a.owner, c.owner);
}

TEST(ChunkPartitionTest, ContiguousRanges) {
  auto p = ChunkPartition(10, 3);
  EXPECT_EQ(p.owner, (std::vector<uint32_t>{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}));
}

TEST(BfsPartitionTest, AssignsEveryNode) {
  Graph g = MakeAmazonLike(5000, 3);
  auto p = BfsPartition(g, 4);
  for (uint32_t s : p.owner) EXPECT_LT(s, 4u);
  size_t total = 0;
  for (uint32_t s = 0; s < 4; ++s) total += p.NodesOf(s).size();
  EXPECT_EQ(total, g.num_nodes());
}

TEST(BfsPartitionTest, CutsFewerEdgesThanHashOnClusteredGraph) {
  Graph g = MakeAmazonLike(5000, 11);
  auto hash = HashPartition(g.num_nodes(), 4, 1);
  auto bfs = BfsPartition(g, 4);
  EXPECT_LT(CountCutEdges(g, bfs), CountCutEdges(g, hash));
}

TEST(CutEdgesTest, SingleSiteCutsNothing) {
  Graph g = MakeUniform(500, 1.2, 5, 9);
  auto p = ChunkPartition(g.num_nodes(), 1);
  EXPECT_EQ(CountCutEdges(g, p), 0u);
}

TEST(BorderNodesTest, IdentifiesCrossFragmentNodes) {
  // 0 -> 1 -> 2 -> 3, split {0,1} | {2,3}: borders are 1 and 2.
  Graph g = testutil::MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
  PartitionAssignment p;
  p.num_fragments = 2;
  p.owner = {0, 0, 1, 1};
  EXPECT_EQ(BorderNodes(g, p, 0), (std::vector<NodeId>{1}));
  EXPECT_EQ(BorderNodes(g, p, 1), (std::vector<NodeId>{2}));
}

}  // namespace
}  // namespace gpm
