// Cross-algorithm invariants swept over realistic generator workloads:
// every (dataset family × pattern size) combination must satisfy the
// paper's containment, determinism and consistency guarantees.

#include <gtest/gtest.h>

#include <tuple>

#include "common/logging.h"
#include "distributed/distributed_match.h"
#include "graph/generator.h"
#include "graph/traversal.h"
#include "isomorphism/vf2.h"
#include "matching/dual_simulation.h"
#include "matching/parallel_match.h"
#include "matching/simulation.h"
#include "matching/strong_simulation.h"
#include "quality/closeness.h"
#include "quality/workloads.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;

struct SweepCase {
  DatasetKind kind;
  uint32_t num_nodes;
  uint32_t pattern_nodes;
};

class GeneratorSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {
 protected:
  SweepCase Case() const {
    static const DatasetKind kKinds[] = {DatasetKind::kAmazonLike,
                                         DatasetKind::kYouTubeLike,
                                         DatasetKind::kUniform};
    const DatasetKind kind = kKinds[std::get<0>(GetParam())];
    const uint32_t nq = std::get<1>(GetParam());
    const uint32_t n = kind == DatasetKind::kYouTubeLike ? 300u : 600u;
    return {kind, n, nq};
  }

  void Prepare() {
    const SweepCase c = Case();
    data_ = MakeDataset(c.kind, c.num_nodes, /*seed=*/77, 1.2,
                        ScaledLabelCount(c.num_nodes));
    Rng rng(99);
    auto q = ExtractPattern(data_, c.pattern_nodes, &rng);
    GPM_CHECK(q.ok());
    pattern_ = std::move(*q);
  }

  Graph data_;
  Graph pattern_;
};

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<int, uint32_t>>& info) {
  static const char* kNames[] = {"Amazon", "YouTube", "Synthetic"};
  return std::string(kNames[std::get<0>(info.param)]) + "q" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Workloads, GeneratorSweepTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(3u, 5u, 7u)),
                         SweepName);

TEST_P(GeneratorSweepTest, ContainmentChainAcrossNotions) {
  Prepare();
  // Prop 1: iso nodes ⊆ strong nodes ⊆ dual nodes ⊆ sim nodes.
  Vf2Options caps;
  caps.max_matches = 5000;
  caps.time_budget_seconds = 5;
  const auto iso_nodes = MatchedNodes(Vf2Enumerate(pattern_, data_, caps).matches);
  auto strong = MatchStrong(pattern_, data_);
  ASSERT_TRUE(strong.ok());
  const auto strong_nodes = MatchedNodes(*strong);
  const auto dual_nodes = MatchedNodes(ComputeDualSimulation(pattern_, data_));
  const auto sim_nodes = MatchedNodes(ComputeSimulation(pattern_, data_));
  EXPECT_TRUE(std::includes(strong_nodes.begin(), strong_nodes.end(),
                            iso_nodes.begin(), iso_nodes.end()));
  EXPECT_TRUE(std::includes(dual_nodes.begin(), dual_nodes.end(),
                            strong_nodes.begin(), strong_nodes.end()));
  EXPECT_TRUE(std::includes(sim_nodes.begin(), sim_nodes.end(),
                            dual_nodes.begin(), dual_nodes.end()));
}

TEST_P(GeneratorSweepTest, MatchIsDeterministic) {
  Prepare();
  auto a = MatchStrong(pattern_, data_);
  auto b = MatchStrong(pattern_, data_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CanonicalResult(*a), CanonicalResult(*b));
}

TEST_P(GeneratorSweepTest, OptimizationsAndParallelismAgree) {
  Prepare();
  auto baseline = MatchStrong(pattern_, data_);
  ASSERT_TRUE(baseline.ok());
  const auto canonical = CanonicalResult(*baseline);
  auto plus = MatchStrongPlus(pattern_, data_);
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(CanonicalResult(*plus), canonical);
  auto parallel = MatchStrongParallel(pattern_, data_, MatchPlusOptions(), 4);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(CanonicalResult(*parallel), canonical);
}

TEST_P(GeneratorSweepTest, DistributedAgrees) {
  Prepare();
  auto central = MatchStrong(pattern_, data_);
  ASSERT_TRUE(central.ok());
  DistributedOptions options;
  options.num_sites = 3;
  auto dist = MatchStrongDistributed(pattern_, data_, options);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(CanonicalResult(*dist), CanonicalResult(*central));
}

TEST_P(GeneratorSweepTest, EveryPerfectSubgraphIsWithinItsBall) {
  Prepare();
  auto strong = MatchStrong(pattern_, data_);
  ASSERT_TRUE(strong.ok());
  for (const auto& pg : *strong) {
    std::vector<bool> within(data_.num_nodes(), false);
    for (const BfsEntry& e :
         Bfs(data_, pg.center, EdgeDirection::kUndirected, pg.radius)) {
      within[e.node] = true;
    }
    for (NodeId v : pg.nodes) EXPECT_TRUE(within[v]);
    // And every match-graph edge is a real data edge.
    for (const auto& [a, b] : pg.edges) EXPECT_TRUE(data_.HasEdge(a, b));
  }
}

TEST_P(GeneratorSweepTest, ExtractedPatternAlwaysHasMatches) {
  Prepare();
  // The pattern is an induced subgraph of the data, so strong simulation
  // must find at least one perfect subgraph (the planted one survives
  // dual refinement: the identity assignment is a dual simulation into
  // the ball around any planted node... via the full graph's relation).
  auto strong = MatchStrong(pattern_, data_);
  ASSERT_TRUE(strong.ok());
  EXPECT_FALSE(strong->empty());
}

}  // namespace
}  // namespace gpm
