#include <gtest/gtest.h>

#include "graph/generator.h"
#include "isomorphism/vf2.h"
#include "matching/dual_simulation.h"
#include "matching/simulation.h"
#include "matching/strong_simulation.h"
#include "quality/closeness.h"
#include "quality/histograms.h"
#include "quality/table_printer.h"
#include "quality/workloads.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

TEST(ClosenessTest, ConventionsAtEmpty) {
  EXPECT_DOUBLE_EQ(Closeness({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Closeness({1, 2}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Closeness({}, {1, 2}), 0.0);
}

TEST(ClosenessTest, RatioOfNodeCounts) {
  EXPECT_DOUBLE_EQ(Closeness({1, 2, 3}, {1, 2, 3, 4}), 0.75);
  EXPECT_DOUBLE_EQ(Closeness({1, 2}, {1, 2}), 1.0);
}

TEST(ClosenessTest, Proposition1OrdersClosenessOnRealWorkload) {
  // VF2 nodes ⊆ strong-sim nodes ⊆ dual ⊆ sim (Prop 1), so closeness is
  // monotone: VF2 (1.0) >= Match >= Sim.
  Graph g = MakeDataset(DatasetKind::kAmazonLike, 1500, 31);
  auto patterns = MakePatternWorkload(g, 5, 3, 32);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    Vf2Options cap;
    cap.max_matches = 20000;
    auto iso_nodes = MatchedNodes(Vf2Enumerate(q, g, cap).matches);
    auto strong = MatchStrong(q, g);
    ASSERT_TRUE(strong.ok());
    auto strong_nodes = MatchedNodes(*strong);
    auto sim_nodes = MatchedNodes(ComputeSimulation(q, g));
    const double c_match = Closeness(iso_nodes, strong_nodes);
    const double c_sim = Closeness(iso_nodes, sim_nodes);
    EXPECT_LE(c_match, 1.0 + 1e-9);
    EXPECT_GE(c_match, c_sim);
  }
}

TEST(MatchedNodesTest, DeduplicatesAcrossMatches) {
  std::vector<Vf2Match> matches;
  matches.push_back({{1, 2}});
  matches.push_back({{2, 3}});
  EXPECT_EQ(MatchedNodes(matches), (std::vector<NodeId>{1, 2, 3}));
}

TEST(CountDistinctSubgraphsTest, NodeSetDedup) {
  std::vector<Vf2Match> matches;
  matches.push_back({{1, 2}});
  matches.push_back({{2, 1}});  // same node set, different mapping
  matches.push_back({{3, 4}});
  EXPECT_EQ(CountDistinctSubgraphs(matches), 2u);
}

TEST(SizeHistogramTest, BucketBoundaries) {
  EXPECT_EQ(SizeHistogram::BucketOf(0), 0u);
  EXPECT_EQ(SizeHistogram::BucketOf(9), 0u);
  EXPECT_EQ(SizeHistogram::BucketOf(10), 1u);
  EXPECT_EQ(SizeHistogram::BucketOf(29), 2u);
  EXPECT_EQ(SizeHistogram::BucketOf(49), 4u);
  EXPECT_EQ(SizeHistogram::BucketOf(50), 5u);
  EXPECT_EQ(SizeHistogram::BucketOf(5000), 5u);
}

TEST(SizeHistogramTest, CountsAndFractions) {
  SizeHistogram h;
  for (size_t s : {3u, 12u, 15u, 27u, 55u}) h.Add(s);
  EXPECT_EQ(h.Total(), 5u);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 2u);
  EXPECT_EQ(h.Count(2), 1u);
  EXPECT_EQ(h.Count(5), 1u);
  EXPECT_DOUBLE_EQ(h.FractionBelow(30), 0.8);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"algo", "time"});
  t.AddRow({"Match", "1.5"});
  t.AddRow({"Match+", "1.0"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("algo"), std::string::npos);
  EXPECT_NE(out.find("Match+"), std::string::npos);
  // All lines (header, underline, rows) end flush: every row printed.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(BenchScaleTest, DefaultsToSmall) {
  // The test environment does not set GPM_SCALE=full.
  BenchScale scale = BenchScale::FromEnv();
  EXPECT_EQ(scale.Pick(10, 100), scale.full ? 100u : 10u);
}

TEST(WorkloadsTest, DatasetsHaveRequestedSizes) {
  for (DatasetKind kind : {DatasetKind::kAmazonLike, DatasetKind::kYouTubeLike,
                           DatasetKind::kUniform}) {
    Graph g = MakeDataset(kind, 500, 41);
    EXPECT_EQ(g.num_nodes(), 500u) << DatasetName(kind);
    EXPECT_GT(g.num_edges(), 0u);
  }
}

TEST(WorkloadsTest, PatternWorkloadRespectsCountAndSize) {
  Graph g = MakeDataset(DatasetKind::kYouTubeLike, 800, 43);
  auto patterns = MakePatternWorkload(g, 6, 4, 44);
  EXPECT_EQ(patterns.size(), 4u);
  for (const auto& q : patterns) EXPECT_EQ(q.num_nodes(), 6u);
}

}  // namespace
}  // namespace gpm
