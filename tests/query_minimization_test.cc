#include "matching/query_minimization.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/generator.h"
#include "matching/dual_simulation.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(MinQTest, RejectsEmptyPattern) {
  Graph q;
  q.Finalize();
  EXPECT_TRUE(MinimizeQuery(q).status().IsInvalidArgument());
}

TEST(MinQTest, AlreadyMinimalPatternIsUnchanged) {
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  auto mq = MinimizeQuery(q);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ(mq->minimized.num_nodes(), 3u);
  EXPECT_EQ(mq->minimized.num_edges(), 2u);
}

TEST(MinQTest, CollapsesTwinBranches) {
  // R with two identical a->b chains collapses to one chain.
  Graph q = MakeGraph({9, 1, 2, 1, 2}, {{0, 1}, {1, 2}, {0, 3}, {3, 4}});
  auto mq = MinimizeQuery(q);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ(mq->minimized.num_nodes(), 3u);
  EXPECT_EQ(mq->minimized.num_edges(), 2u);
  EXPECT_EQ(mq->class_of[1], mq->class_of[3]);
  EXPECT_EQ(mq->class_of[2], mq->class_of[4]);
}

TEST(MinQTest, DoesNotCollapseDifferentContexts) {
  // Two label-1 nodes with different children must stay distinct.
  Graph q = MakeGraph({1, 1, 2, 3}, {{0, 2}, {1, 3}, {2, 3}});
  auto mq = MinimizeQuery(q);
  ASSERT_TRUE(mq.ok());
  EXPECT_NE(mq->class_of[0], mq->class_of[1]);
}

TEST(MinQTest, ClassLabelsMatchMembers) {
  std::vector<Label> pool{0, 1, 2};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph q = RandomPattern(6, 1.3, pool, seed);
    auto mq = MinimizeQuery(q);
    ASSERT_TRUE(mq.ok());
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      EXPECT_EQ(q.label(u), mq->minimized.label(mq->class_of[u]));
    }
  }
}

TEST(MinQTest, QuotientOfConnectedPatternIsConnected) {
  std::vector<Label> pool{0, 1};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph q = RandomPattern(7, 1.25, pool, seed + 40);
    auto mq = MinimizeQuery(q);
    ASSERT_TRUE(mq.ok());
    EXPECT_TRUE(IsConnected(mq->minimized)) << "seed " << seed;
  }
}

TEST(MinQTest, MinimizationIsIdempotent) {
  std::vector<Label> pool{0, 1, 2};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph q = RandomPattern(6, 1.35, pool, seed + 80);
    auto mq = MinimizeQuery(q);
    ASSERT_TRUE(mq.ok());
    auto mq2 = MinimizeQuery(mq->minimized);
    ASSERT_TRUE(mq2.ok());
    EXPECT_EQ(mq->minimized.num_nodes(), mq2->minimized.num_nodes());
    EXPECT_EQ(mq->minimized.num_edges(), mq2->minimized.num_edges());
  }
}

TEST(MinQTest, Lemma2SameDualRelationOnAnyData) {
  // sim_Qm(class_of[u]) == sim_Q(u) for arbitrary data graphs.
  std::vector<Label> pool{0, 1, 2};
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph q = RandomPattern(6, 1.3, pool, seed + 120);
    Graph g = MakeUniform(100, 1.3, 3, seed + 121);
    auto mq = MinimizeQuery(q);
    ASSERT_TRUE(mq.ok());
    auto s_q = ComputeDualSimulation(q, g);
    auto s_m = ComputeDualSimulation(mq->minimized, g);
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      EXPECT_EQ(s_q.sim[u], s_m.sim[mq->class_of[u]])
          << "seed " << seed << " u " << u;
    }
  }
}

TEST(MinQTest, PaperExampleCollapsesDuplicatedChain) {
  // Example 4 / Fig. 6(a) is asserted in paper_examples_test; here check a
  // deeper chain: R -> (B -> C -> D) x3 collapses to one chain.
  Graph q;
  const Label kR = 0, kB = 1, kC = 2, kD = 3;
  NodeId r = q.AddNode(kR);
  for (int i = 0; i < 3; ++i) {
    NodeId b = q.AddNode(kB);
    NodeId c = q.AddNode(kC);
    NodeId d = q.AddNode(kD);
    q.AddEdge(r, b);
    q.AddEdge(b, c);
    q.AddEdge(c, d);
  }
  q.Finalize();
  auto mq = MinimizeQuery(q);
  ASSERT_TRUE(mq.ok());
  EXPECT_EQ(mq->minimized.num_nodes(), 4u);
  EXPECT_EQ(mq->minimized.num_edges(), 3u);
}

}  // namespace
}  // namespace gpm
