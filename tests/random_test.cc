#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gpm {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextDoubleIsUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallValues) {
  Rng rng(19);
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(200, 1.0) < 10) ++small;
  }
  // With s=1.0, the first 10 of 200 ranks carry ~half the mass.
  EXPECT_GT(small, 3000);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(21);
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++small;
  }
  EXPECT_NEAR(small / 10000.0, 0.1, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(1000, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_EQ(unique.size(), 50u);
  for (uint64_t v : sample) EXPECT_LT(v, 1000u);
}

TEST(RngTest, SampleAllWhenKExceedsN) {
  Rng rng(29);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace gpm
