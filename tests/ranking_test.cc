#include "extensions/ranking.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(RankingTest, ExactEmbeddingScoresOne) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ(ScoreMatch(q, (*result)[0]), 1.0);
}

TEST(RankingTest, SmallerAndTighterScoresHigher) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  // Data: one exact pair, and one blob where the b is shared by three a's
  // (bigger subgraph, more ambiguity).
  Graph g = MakeGraph({1, 2, 1, 1, 1, 2},
                      {{0, 1}, {2, 5}, {3, 5}, {4, 5}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->size(), 2u);
  auto ranked = RankMatches(q, *result);
  EXPECT_GT(ranked.front().score, ranked.back().score);
  // A pattern-sized exact match ranks first; the 4-node blob last.
  EXPECT_EQ((*result)[ranked.front().index].nodes.size(), 2u);
  EXPECT_EQ((*result)[ranked.back().index].nodes.size(), 4u);
}

TEST(RankingTest, ScoresAreInUnitInterval) {
  Graph g = MakeUniform(200, 1.3, 3, 5);
  Rng rng(6);
  auto q = ExtractPattern(g, 4, &rng);
  ASSERT_TRUE(q.ok());
  auto result = MatchStrong(*q, g);
  ASSERT_TRUE(result.ok());
  for (const auto& rm : RankMatches(*q, *result)) {
    EXPECT_GE(rm.score, 0.0);
    EXPECT_LE(rm.score, 1.0);
  }
}

TEST(RankingTest, RankingIsSortedAndStable) {
  Graph g = MakeUniform(300, 1.3, 3, 7);
  Rng rng(8);
  auto q = ExtractPattern(g, 4, &rng);
  ASSERT_TRUE(q.ok());
  auto result = MatchStrong(*q, g);
  ASSERT_TRUE(result.ok());
  auto ranked = RankMatches(*q, *result);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  // Deterministic: same input, same order.
  auto ranked2 = RankMatches(*q, *result);
  for (size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(ranked[i].index, ranked2[i].index);
  }
}

TEST(RankingTest, TopKTruncates) {
  Graph q = MakeGraph({7}, {});
  Graph g = MakeGraph({7, 7, 7, 7}, {});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 4u);
  EXPECT_EQ(TopKMatches(q, *result, 2).size(), 2u);
  EXPECT_EQ(TopKMatches(q, *result, 10).size(), 4u);
  EXPECT_TRUE(TopKMatches(q, *result, 0).empty());
}

TEST(RankingTest, WeightsShiftTheWinner) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 1, 2},
                      {{0, 1}, {2, 4}, {3, 4}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->size(), 2u);
  // With zero weight on everything but specificity, the exact pair (one
  // candidate per query node) still wins; sanity-check the knob plumbing
  // by ensuring scores change when weights change.
  RankingWeights only_compact;
  only_compact.compactness = 1.0;
  only_compact.specificity = 0.0;
  only_compact.tightness = 0.0;
  RankingWeights only_specific;
  only_specific.compactness = 0.0;
  only_specific.specificity = 1.0;
  only_specific.tightness = 0.0;
  // The 3-node blob {2,3,4}: compactness 2/3, specificity
  // (1/2 + 1) / 2 = 0.75.
  const PerfectSubgraph* blob = nullptr;
  for (const auto& pg : *result) {
    if (pg.nodes.size() == 3) blob = &pg;
  }
  ASSERT_NE(blob, nullptr);
  EXPECT_NEAR(ScoreMatch(q, *blob, only_compact), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(ScoreMatch(q, *blob, only_specific), 0.75, 1e-9);
}

}  // namespace
}  // namespace gpm
