#include "extensions/regex_pattern.h"

#include <gtest/gtest.h>

#include "matching/simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;
using testutil::MatchesOf;

// Data graph with labeled edges.
Graph EdgeLabeledGraph(
    std::initializer_list<Label> labels,
    std::initializer_list<std::tuple<NodeId, NodeId, EdgeLabel>> edges) {
  Graph g;
  for (Label l : labels) g.AddNode(l);
  for (const auto& [u, v, el] : edges) g.AddEdge(u, v, el);
  g.Finalize();
  return g;
}

TEST(RegexQueryTest, DefaultConstraintIsPlainSimulation) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 2}, {{0, 1}});
  RegexQuery query(std::move(q));
  Graph q2 = MakeGraph({1, 2}, {{0, 1}});
  auto regex_rel = ComputeRegexSimulation(query, g);
  auto plain_rel = ComputeSimulation(q2, g);
  EXPECT_EQ(regex_rel.sim, plain_rel.sim);
}

TEST(RegexQueryTest, SetConstraintValidation) {
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  EXPECT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 3}}).ok());
  EXPECT_TRUE(query.SetConstraint(1, 0, {}).IsInvalidArgument());
  EXPECT_TRUE(query.SetConstraint(0, 1, {}).IsInvalidArgument());
  EXPECT_TRUE(
      query.SetConstraint(0, 1, {RegexAtom{5, 3, 1}}).IsInvalidArgument());
  EXPECT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 100000}})
                  .IsInvalidArgument());
}

TEST(RegexQueryTest, SingleLabelAtomFollowsOnlyThatLabel) {
  // a -[x]-> b: edge labeled x reaches b; edge labeled y must not.
  Graph g = EdgeLabeledGraph({1, 2, 2}, {{0, 1, /*x=*/5}, {0, 2, /*y=*/6}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 1}}).ok());
  auto rel = ComputeRegexSimulation(query, g);
  ASSERT_TRUE(rel.IsTotal());
  // Only node 1 is a valid witness, but both b-nodes stay in sim(b)
  // since b has no out-constraints; the a-node matched via label 5.
  EXPECT_EQ(MatchesOf(rel, 0), (std::set<NodeId>{0}));
}

TEST(RegexQueryTest, BoundedRepetition) {
  // a -[x^{2..3}]-> b over an x-chain of length 2: ok. Length 1: not ok.
  Graph chain2 = EdgeLabeledGraph({1, 9, 2}, {{0, 1, 5}, {1, 2, 5}});
  Graph chain1 = EdgeLabeledGraph({1, 2}, {{0, 1, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 2, 3}}).ok());
  EXPECT_TRUE(RegexSimulates(query, chain2));
  EXPECT_FALSE(RegexSimulates(query, chain1));
}

TEST(RegexQueryTest, ConcatenationOfAtoms) {
  // a -[x then y]-> b.
  Graph good = EdgeLabeledGraph({1, 9, 2}, {{0, 1, 5}, {1, 2, 6}});
  Graph wrong_order = EdgeLabeledGraph({1, 9, 2}, {{0, 1, 6}, {1, 2, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      query.SetConstraint(0, 1, {RegexAtom{5, 1, 1}, RegexAtom{6, 1, 1}}).ok());
  EXPECT_TRUE(RegexSimulates(query, good));
  EXPECT_FALSE(RegexSimulates(query, wrong_order));
}

TEST(RegexQueryTest, UnboundedRepetitionReachesFar) {
  Graph far = EdgeLabeledGraph(
      {1, 9, 9, 9, 2}, {{0, 1, 5}, {1, 2, 5}, {2, 3, 5}, {3, 4, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      query.SetConstraint(0, 1, {RegexAtom{5, 1, kUnboundedReps}}).ok());
  EXPECT_TRUE(RegexSimulates(query, far));
}

TEST(RegexQueryTest, UnboundedWithMinRepsOnAwkwardCycle) {
  // min 5 reps of x over a 2-cycle: hops 5, 7, 9... land alternately; the
  // counted-state search must find the witness at hop >= 5.
  Graph g = EdgeLabeledGraph({1, 2}, {{0, 1, 5}, {1, 0, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      query.SetConstraint(0, 1, {RegexAtom{5, 5, kUnboundedReps}}).ok());
  auto rel = ComputeRegexSimulation(query, g);
  EXPECT_TRUE(rel.IsTotal());  // b reached at hops 5, 7, ...
}

TEST(RegexQueryTest, ZeroMinRepsAllowsSkippingAtom) {
  // a -[x^{0..1} then y]-> b: y alone suffices.
  Graph g = EdgeLabeledGraph({1, 2}, {{0, 1, 6}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      query.SetConstraint(0, 1, {RegexAtom{5, 0, 1}, RegexAtom{6, 1, 1}}).ok());
  EXPECT_TRUE(RegexSimulates(query, g));
}

TEST(RegexQueryTest, WitnessMustBeMatchedNode) {
  // a -[x^{1..2}]-> b -> c: the b reached must itself have a c-child.
  Graph g = EdgeLabeledGraph({1, 2, 2, 3},
                             {{0, 1, 5}, {1, 2, 5}, {2, 3, 0}});
  // Node 1 (b, 1 hop) has no c-child; node 2 (b, 2 hops) does.
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  RegexQuery query(std::move(q));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto rel = ComputeRegexSimulation(query, g);
  ASSERT_TRUE(rel.IsTotal());
  EXPECT_EQ(MatchesOf(rel, 1), (std::set<NodeId>{2}));
}

}  // namespace
}  // namespace gpm
