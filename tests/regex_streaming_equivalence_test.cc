// Regex-strong executor parity suite: the parallel, distributed, and
// streaming regex paths against the serial materialized baseline —
//
//   - batch results byte-identical across 1/2/4/8 threads and every
//     site count/partition (min-center representatives, (center,
//     content-hash) order);
//   - streamed-vs-batch set equality under every Engine policy, with
//     seconds_to_first_subgraph populated and inside the total wall time;
//   - a sink returning stop halts parallel ball workers and distributed
//     sites early without deadlock;
//   - the global regex filter changes nothing but the work done.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "api/algo_names.h"
#include "api/engine.h"
#include "distributed/distributed_match.h"
#include "extensions/regex_strong.h"
#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;

bool ByteIdentical(const PerfectSubgraph& a, const PerfectSubgraph& b) {
  return a.center == b.center && a.radius == b.radius &&
         a.nodes == b.nodes && a.edges == b.edges &&
         a.relation == b.relation;
}

void ExpectByteIdentical(const std::vector<PerfectSubgraph>& got,
                         const std::vector<PerfectSubgraph>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(ByteIdentical(got[i], want[i]))
        << "result " << i << " differs (center " << got[i].center << " vs "
        << want[i].center << ")";
  }
}

// An edge-typed workload with one regex match per community: pattern
// a(7) =follows^{1..2}=> b(8), b =employs=> a; each community routes the
// follows-path through a label-9 intermediary the match must skip.
RegexQuery FollowsEmploysQuery() {
  Graph q;
  q.AddNode(7);
  q.AddNode(8);
  q.AddEdge(0, 1);
  q.AddEdge(1, 0);
  q.Finalize();
  RegexQuery query(std::move(q));
  EXPECT_TRUE(query.SetConstraint(0, 1, {RegexAtom{1, 1, 2}}).ok());
  EXPECT_TRUE(query.SetConstraint(1, 0, {RegexAtom{2, 1, 1}}).ok());
  return query;
}

Graph ManyCommunities(NodeId n) {
  Graph g;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId person = g.AddNode(7);
    const NodeId via = g.AddNode(9);
    const NodeId boss = g.AddNode(8);
    g.AddEdge(person, via, 1);  // follows
    g.AddEdge(via, boss, 1);    // follows
    g.AddEdge(boss, person, 2); // employs
  }
  g.Finalize();
  return g;
}

// A denser seeded workload where duplicates and misses actually occur.
struct RegexWorkload {
  Graph g;
  std::vector<RegexQuery> queries;
};

RegexWorkload MakeRegexWorkload(uint64_t seed) {
  RegexWorkload w;
  w.g = MakeAmazonLike(/*n=*/250, seed, /*num_labels=*/10);
  Rng rng(seed * 733 + 5);
  for (uint32_t nq = 3; nq <= 4; ++nq) {
    auto q = ExtractPattern(w.g, nq, &rng);
    if (!q.ok()) continue;
    RegexQuery query(std::move(*q));
    const Graph& pattern = query.pattern();
    for (NodeId u = 0; u < pattern.num_nodes(); ++u) {
      for (NodeId v : pattern.OutNeighbors(u)) {
        if (rng.Bernoulli(0.5)) continue;
        EXPECT_TRUE(query
                        .SetConstraint(
                            u, v,
                            {RegexAtom{kAnyEdgeLabel, 1,
                                       1 + static_cast<uint32_t>(
                                               rng.Uniform(2))}})
                        .ok());
      }
    }
    w.queries.push_back(std::move(query));
  }
  return w;
}

TEST(RegexStreamingEquivalenceTest, ParallelBatchByteIdenticalAcrossThreads) {
  const RegexWorkload w = MakeRegexWorkload(11);
  ASSERT_FALSE(w.queries.empty());
  for (const RegexQuery& query : w.queries) {
    MatchStats serial_stats;
    auto serial = MatchStrongRegex(query, w.g, /*radius=*/0, &serial_stats);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      MatchStats par_stats;
      auto par = MatchStrongRegexParallel(query, w.g, /*radius=*/0, threads,
                                          &par_stats);
      ASSERT_TRUE(par.ok());
      ExpectByteIdentical(*par, *serial);
      EXPECT_EQ(par_stats.balls_considered, serial_stats.balls_considered);
      EXPECT_EQ(par_stats.subgraphs_found, serial_stats.subgraphs_found);
      EXPECT_EQ(par_stats.duplicates_removed,
                serial_stats.duplicates_removed);
      EXPECT_EQ(par_stats.candidate_pairs_refined,
                serial_stats.candidate_pairs_refined);
    }
  }
}

TEST(RegexStreamingEquivalenceTest, DistributedBatchByteIdenticalToSerial) {
  const RegexWorkload w = MakeRegexWorkload(13);
  ASSERT_FALSE(w.queries.empty());
  for (const RegexQuery& query : w.queries) {
    auto serial = MatchStrongRegex(query, w.g);
    ASSERT_TRUE(serial.ok());
    for (uint32_t sites : {1u, 3u}) {
      for (bool parallel : {true, false}) {
        SCOPED_TRACE("sites=" + std::to_string(sites) +
                     " parallel=" + std::to_string(parallel));
        DistributedOptions options;
        options.num_sites = sites;
        options.parallel = parallel;
        auto distributed =
            MatchStrongRegexDistributed(query, w.g, /*radius=*/0, options);
        ASSERT_TRUE(distributed.ok());
        ExpectByteIdentical(*distributed, *serial);
      }
    }
  }
}

TEST(RegexStreamingEquivalenceTest, GlobalFilterChangesNothingButTheWork) {
  const RegexWorkload w = MakeRegexWorkload(17);
  ASSERT_FALSE(w.queries.empty());
  for (const RegexQuery& query : w.queries) {
    auto filter = ComputeRegexFilter(query, w.g);
    ASSERT_TRUE(filter.ok());
    MatchStats bare_stats, filtered_stats;
    auto bare = MatchStrongRegex(query, w.g, /*radius=*/0, &bare_stats);
    auto filtered = MatchStrongRegex(query, w.g, /*radius=*/0,
                                     &filtered_stats, &*filter);
    ASSERT_TRUE(bare.ok() && filtered.ok());
    ExpectByteIdentical(*filtered, *bare);
    if (filter->proven_empty) {
      EXPECT_TRUE(filtered->empty());
    } else {
      // The filter only prunes: never more balls than the bare scan.
      EXPECT_LE(filtered_stats.balls_considered,
                bare_stats.balls_considered);
    }
  }
}

TEST(RegexStreamingEquivalenceTest, EngineStreamsEqualBatchUnderEveryPolicy) {
  Engine engine;
  const RegexWorkload w = MakeRegexWorkload(19);
  ASSERT_FALSE(w.queries.empty());
  auto prepared = engine.Prepare(w.queries[0]);
  ASSERT_TRUE(prepared.ok());

  MatchRequest reference_request;
  reference_request.algo = Algo::kRegexStrong;
  auto reference = engine.Match(*prepared, w.g, reference_request);
  ASSERT_TRUE(reference.ok());
  const auto want = CanonicalResult(reference->subgraphs);

  for (ExecPolicy policy : {ExecPolicy::Serial(), ExecPolicy::Parallel(4),
                            ExecPolicy::Distributed()}) {
    SCOPED_TRACE(ExecPolicyName(policy.kind));
    MatchRequest request;
    request.algo = Algo::kRegexStrong;
    request.policy = policy;

    auto batch = engine.Match(*prepared, w.g, request);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(CanonicalResult(batch->subgraphs), want);
    EXPECT_EQ(batch->subgraphs_delivered, reference->subgraphs.size());

    std::vector<PerfectSubgraph> streamed;
    auto stream = engine.Match(*prepared, w.g, request,
                               [&streamed](PerfectSubgraph&& pg) {
                                 streamed.push_back(std::move(pg));
                                 return true;
                               });
    ASSERT_TRUE(stream.ok());
    EXPECT_TRUE(stream->subgraphs.empty());
    EXPECT_EQ(stream->subgraphs_delivered, reference->subgraphs.size());
    EXPECT_EQ(CanonicalResult(streamed), want);
    if (stream->subgraphs_delivered > 0) {
      EXPECT_GT(stream->stats.seconds_to_first_subgraph, 0.0);
      EXPECT_LT(stream->stats.seconds_to_first_subgraph, stream->seconds)
          << "first delivery must land before the run completes";
    }
  }
}

TEST(RegexStreamingEquivalenceTest, SinkStopHaltsParallelWithoutDeadlock) {
  const Graph g = ManyCommunities(250);
  const RegexQuery query = FollowsEmploysQuery();
  auto full = MatchStrongRegex(query, g);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 3u) << "workload must have several results";
  for (size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    size_t seen = 0;
    auto delivered = MatchStrongRegexParallelStream(
        query, g, /*radius=*/0, threads,
        [&seen](PerfectSubgraph&&) {
          ++seen;
          return false;  // stop after the first
        },
        nullptr);
    ASSERT_TRUE(delivered.ok());
    EXPECT_EQ(*delivered, 1u);
    EXPECT_EQ(seen, 1u);
  }
}

TEST(RegexStreamingEquivalenceTest, SinkStopHaltsDistributedWithoutDeadlock) {
  const Graph g = ManyCommunities(120);
  const RegexQuery query = FollowsEmploysQuery();
  auto full = MatchStrongRegex(query, g);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 3u);
  for (bool parallel : {true, false}) {
    SCOPED_TRACE("parallel=" + std::to_string(parallel));
    DistributedOptions options;
    options.num_sites = 4;
    options.parallel = parallel;
    size_t seen = 0;
    auto delivered = MatchStrongRegexDistributedStream(
        query, g, /*radius=*/0, options,
        [&seen](PerfectSubgraph&&) {
          ++seen;
          return false;
        },
        nullptr);
    ASSERT_TRUE(delivered.ok());
    EXPECT_EQ(*delivered, 1u);
    EXPECT_EQ(seen, 1u);
  }
}

TEST(RegexStreamingEquivalenceTest, EngineSinkStopAcrossPolicies) {
  Engine engine;
  const Graph g = ManyCommunities(80);
  auto prepared = engine.Prepare(FollowsEmploysQuery());
  ASSERT_TRUE(prepared.ok());
  for (ExecPolicy policy : {ExecPolicy::Serial(), ExecPolicy::Parallel(4),
                            ExecPolicy::Distributed()}) {
    SCOPED_TRACE(ExecPolicyName(policy.kind));
    MatchRequest request;
    request.algo = Algo::kRegexStrong;
    request.policy = policy;
    size_t seen = 0;
    auto stopped = engine.Match(*prepared, g, request,
                                [&seen](PerfectSubgraph&&) {
                                  ++seen;
                                  return false;
                                });
    ASSERT_TRUE(stopped.ok());
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(stopped->subgraphs_delivered, 1u);
    EXPECT_TRUE(stopped->matched);
  }
}

// The distributed wire path round-trips a RegexQuery faithfully.
TEST(RegexSerializationTest, RoundTripPreservesPatternAndConstraints) {
  const RegexQuery query = FollowsEmploysQuery();
  auto parsed = DeserializeRegexQuery(SerializeRegexQuery(query));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->pattern().StructurallyEqual(query.pattern()));
  EXPECT_EQ(parsed->constraints().size(), query.constraints().size());
  EXPECT_EQ(parsed->ContentHash(), query.ContentHash());
  // Truncations must fail loudly, never parse as a different query.
  const std::string bytes = SerializeRegexQuery(query);
  for (size_t cut : {size_t{0}, size_t{3}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeRegexQuery(bytes.substr(0, cut)).ok()) << cut;
  }
}

}  // namespace
}  // namespace gpm
