#include "extensions/regex_strong.h"

#include <gtest/gtest.h>

#include "matching/dual_simulation.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;
using testutil::MatchesOf;

Graph EdgeLabeledGraph(
    std::initializer_list<Label> labels,
    std::initializer_list<std::tuple<NodeId, NodeId, EdgeLabel>> edges) {
  Graph g;
  for (Label l : labels) g.AddNode(l);
  for (const auto& [u, v, el] : edges) g.AddEdge(u, v, el);
  g.Finalize();
  return g;
}

TEST(RegexDualSimTest, DefaultConstraintsEqualPlainDualSimulation) {
  Graph g = MakeGraph({1, 2, 2}, {{0, 1}});  // orphan b at node 2
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  Graph q2 = MakeGraph({1, 2}, {{0, 1}});
  auto regex_rel = ComputeRegexDualSimulation(query, g);
  auto plain_rel = ComputeDualSimulation(q2, g);
  EXPECT_EQ(regex_rel.sim, plain_rel.sim);
}

TEST(RegexDualSimTest, ParentConditionUsesReversedWitness) {
  // a -[x^{1..2}]-> b: b-matches need an *incoming* x-path of length <= 2
  // from an a-match.
  Graph g = EdgeLabeledGraph({1, 9, 2, 2},
                             {{0, 1, 5}, {1, 2, 5}});  // node 3: orphan b
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto rel = ComputeRegexDualSimulation(query, g);
  ASSERT_TRUE(rel.IsTotal());
  EXPECT_EQ(MatchesOf(rel, 1), (std::set<NodeId>{2}));  // orphan filtered
}

TEST(RegexDualSimTest, ContainedInRegexSimulation) {
  Graph g = EdgeLabeledGraph({1, 2, 2, 1},
                             {{0, 1, 5}, {3, 2, 6}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 1}}).ok());
  auto dual = ComputeRegexDualSimulation(query, g);
  auto plain = ComputeRegexSimulation(query, g);
  for (NodeId u = 0; u < 2; ++u) {
    for (NodeId v : dual.sim[u]) EXPECT_TRUE(plain.Contains(u, v));
  }
}

TEST(DefaultRegexRadiusTest, PlainEdgesGiveOrdinaryDiameter) {
  RegexQuery query(MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}}));
  EXPECT_EQ(DefaultRegexRadius(query), 2u);
}

TEST(DefaultRegexRadiusTest, BoundsStretchTheRadius) {
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 3}}).ok());
  EXPECT_EQ(DefaultRegexRadius(query), 3u);
  RegexQuery unbounded(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      unbounded.SetConstraint(0, 1, {RegexAtom{5, 1, kUnboundedReps}}).ok());
  EXPECT_EQ(DefaultRegexRadius(unbounded, /*unbounded_cap=*/6), 6u);
}

TEST(MatchStrongRegexTest, PlainEdgesMatchClassicStrongSimulationNodes) {
  // With single-hop wildcard constraints, the matched node sets coincide
  // with classic strong simulation (virtual edges == real edges).
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {{0, 1}, {2, 3}, {3, 2}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  auto regex_result = MatchStrongRegex(query, g);
  auto classic = MatchStrong(q, g);
  ASSERT_TRUE(regex_result.ok());
  ASSERT_TRUE(classic.ok());
  EXPECT_EQ(testutil::AllNodes(*regex_result), testutil::AllNodes(*classic));
}

TEST(MatchStrongRegexTest, TwoHopConstraintMatchesThroughIntermediary) {
  // a -[x^{1..2}]-> b across a -> m -> b; the intermediary m is not part
  // of the match.
  Graph g = EdgeLabeledGraph({1, 9, 2}, {{0, 1, 5}, {1, 2, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].nodes, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ((*result)[0].edges,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 2}}));
}

TEST(MatchStrongRegexTest, LocalityStillExcludesFarMatches) {
  // Pattern a <-> b with 1-hop constraints (radius 1): a far-apart
  // alternating 8-cycle must be rejected, exactly like classic strong
  // simulation's Q3 example... but here the cycle nodes ARE within each
  // other's radius only pairwise; the 8-cycle still dual-matches globally
  // and fails per-ball.
  Graph q = MakeGraph({1, 2}, {{0, 1}, {1, 0}});
  Graph g;
  for (int i = 0; i < 8; ++i) g.AddNode(i % 2 == 0 ? 1 : 2);
  for (int i = 0; i < 8; ++i) g.AddEdge(i, (i + 1) % 8);
  g.Finalize();
  RegexQuery query(std::move(q));
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MatchStrongRegexTest, RejectsDisconnectedPattern) {
  RegexQuery query(MakeGraph({1, 2}, {}));
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(MatchStrongRegex(query, g).status().IsInvalidArgument());
}

TEST(MatchStrongRegexTest, EdgeTypedSocialExample) {
  // "find a person who *follows* someone within two hops who *employs*
  // them back" — follows = label 1, employs = label 2.
  Graph q = MakeGraph({7, 8}, {{0, 1}, {1, 0}});
  RegexQuery query(std::move(q));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{1, 1, 2}}).ok());
  ASSERT_TRUE(query.SetConstraint(1, 0, {RegexAtom{2, 1, 1}}).ok());
  // person(0) -follows-> person(9, wrong label) -follows-> boss(2);
  // boss(2) -employs-> person(0). Plus a decoy boss without employs.
  Graph g = EdgeLabeledGraph({7, 7, 8, 8},
                             {{0, 1, 1}, {1, 2, 1}, {2, 0, 2}});
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(testutil::MatchesOf(*result, 0), (std::set<NodeId>{0}));
  EXPECT_EQ(testutil::MatchesOf(*result, 1), (std::set<NodeId>{2}));
}

}  // namespace
}  // namespace gpm
