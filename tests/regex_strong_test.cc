#include "extensions/regex_strong.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "common/random.h"
#include "matching/dual_simulation.h"
#include "matching/strong_simulation.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;
using testutil::MatchesOf;

Graph EdgeLabeledGraph(
    std::initializer_list<Label> labels,
    std::initializer_list<std::tuple<NodeId, NodeId, EdgeLabel>> edges) {
  Graph g;
  for (Label l : labels) g.AddNode(l);
  for (const auto& [u, v, el] : edges) g.AddEdge(u, v, el);
  g.Finalize();
  return g;
}

TEST(RegexDualSimTest, DefaultConstraintsEqualPlainDualSimulation) {
  Graph g = MakeGraph({1, 2, 2}, {{0, 1}});  // orphan b at node 2
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  Graph q2 = MakeGraph({1, 2}, {{0, 1}});
  auto regex_rel = ComputeRegexDualSimulation(query, g);
  auto plain_rel = ComputeDualSimulation(q2, g);
  EXPECT_EQ(regex_rel.sim, plain_rel.sim);
}

TEST(RegexDualSimTest, ParentConditionUsesReversedWitness) {
  // a -[x^{1..2}]-> b: b-matches need an *incoming* x-path of length <= 2
  // from an a-match.
  Graph g = EdgeLabeledGraph({1, 9, 2, 2},
                             {{0, 1, 5}, {1, 2, 5}});  // node 3: orphan b
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto rel = ComputeRegexDualSimulation(query, g);
  ASSERT_TRUE(rel.IsTotal());
  EXPECT_EQ(MatchesOf(rel, 1), (std::set<NodeId>{2}));  // orphan filtered
}

TEST(RegexDualSimTest, ContainedInRegexSimulation) {
  Graph g = EdgeLabeledGraph({1, 2, 2, 1},
                             {{0, 1, 5}, {3, 2, 6}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 1}}).ok());
  auto dual = ComputeRegexDualSimulation(query, g);
  auto plain = ComputeRegexSimulation(query, g);
  for (NodeId u = 0; u < 2; ++u) {
    for (NodeId v : dual.sim[u]) EXPECT_TRUE(plain.Contains(u, v));
  }
}

TEST(DefaultRegexRadiusTest, PlainEdgesGiveOrdinaryDiameter) {
  RegexQuery query(MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}}));
  EXPECT_EQ(DefaultRegexRadius(query), 2u);
}

TEST(DefaultRegexRadiusTest, BoundsStretchTheRadius) {
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 3}}).ok());
  EXPECT_EQ(DefaultRegexRadius(query), 3u);
  RegexQuery unbounded(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(
      unbounded.SetConstraint(0, 1, {RegexAtom{5, 1, kUnboundedReps}}).ok());
  EXPECT_EQ(DefaultRegexRadius(unbounded, /*unbounded_cap=*/6), 6u);
}

TEST(MatchStrongRegexTest, PlainEdgesMatchClassicStrongSimulationNodes) {
  // With single-hop wildcard constraints, the matched node sets coincide
  // with classic strong simulation (virtual edges == real edges).
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {{0, 1}, {2, 3}, {3, 2}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  auto regex_result = MatchStrongRegex(query, g);
  auto classic = MatchStrong(q, g);
  ASSERT_TRUE(regex_result.ok());
  ASSERT_TRUE(classic.ok());
  EXPECT_EQ(testutil::AllNodes(*regex_result), testutil::AllNodes(*classic));
}

TEST(MatchStrongRegexTest, TwoHopConstraintMatchesThroughIntermediary) {
  // a -[x^{1..2}]-> b across a -> m -> b; the intermediary m is not part
  // of the match.
  Graph g = EdgeLabeledGraph({1, 9, 2}, {{0, 1, 5}, {1, 2, 5}});
  RegexQuery query(MakeGraph({1, 2}, {{0, 1}}));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{5, 1, 2}}).ok());
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].nodes, (std::vector<NodeId>{0, 2}));
  EXPECT_EQ((*result)[0].edges,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 2}}));
}

TEST(MatchStrongRegexTest, LocalityStillExcludesFarMatches) {
  // Pattern a <-> b with 1-hop constraints (radius 1): a far-apart
  // alternating 8-cycle must be rejected, exactly like classic strong
  // simulation's Q3 example... but here the cycle nodes ARE within each
  // other's radius only pairwise; the 8-cycle still dual-matches globally
  // and fails per-ball.
  Graph q = MakeGraph({1, 2}, {{0, 1}, {1, 0}});
  Graph g;
  for (int i = 0; i < 8; ++i) g.AddNode(i % 2 == 0 ? 1 : 2);
  for (int i = 0; i < 8; ++i) g.AddEdge(i, (i + 1) % 8);
  g.Finalize();
  RegexQuery query(std::move(q));
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MatchStrongRegexTest, RejectsDisconnectedPattern) {
  RegexQuery query(MakeGraph({1, 2}, {}));
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(MatchStrongRegex(query, g).status().IsInvalidArgument());
}

// --- DefaultRegexRadius property tests -------------------------------------

// A random connected pattern (spanning tree + a few extra edges) wrapped
// in random regex constraints. `unbounded_prob` > 0 sprinkles unbounded
// atoms in.
RegexQuery RandomRegexPattern(Rng* rng, double unbounded_prob) {
  const uint32_t nq = 2 + static_cast<uint32_t>(rng->Uniform(4));  // 2..5
  Graph q;
  for (uint32_t u = 0; u < nq; ++u) {
    q.AddNode(static_cast<Label>(rng->Uniform(3)));
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (uint32_t u = 1; u < nq; ++u) {  // spanning tree: connectivity
    const NodeId parent = static_cast<NodeId>(rng->Uniform(u));
    edges.emplace_back(parent, u);
  }
  for (int extra = 0; extra < 2; ++extra) {  // a few extra edges
    const NodeId a = static_cast<NodeId>(rng->Uniform(nq));
    const NodeId b = static_cast<NodeId>(rng->Uniform(nq));
    if (a == b || std::find(edges.begin(), edges.end(),
                            std::make_pair(a, b)) != edges.end()) {
      continue;
    }
    edges.emplace_back(a, b);
  }
  for (const auto& [a, b] : edges) q.AddEdge(a, b);
  q.Finalize();

  RegexQuery query(std::move(q));
  for (const auto& [a, b] : edges) {
    if (rng->Bernoulli(0.3)) continue;  // keep the default wildcard hop
    RegexPath path;
    const size_t num_atoms = 1 + rng->Uniform(2);
    for (size_t i = 0; i < num_atoms; ++i) {
      RegexAtom atom;
      atom.label = static_cast<EdgeLabel>(rng->Uniform(3));
      atom.min_reps = 1 + static_cast<uint32_t>(rng->Uniform(2));
      atom.max_reps = atom.min_reps + static_cast<uint32_t>(rng->Uniform(3));
      if (rng->Bernoulli(unbounded_prob)) atom.max_reps = kUnboundedReps;
      path.push_back(atom);
    }
    EXPECT_TRUE(query.SetConstraint(a, b, std::move(path)).ok());
  }
  return query;
}

// Brute-force weighted pattern diameter via Dijkstra from every source —
// an independent algorithm from the Floyd-Warshall the implementation
// uses. Mirrors DefaultRegexRadius's weighting: each directed pattern
// edge relaxes both endpoints undirected with weight = max(Σ atoms'
// effective max reps, 1), unbounded atoms counted as max(min_reps, cap).
uint64_t BruteForceWeightedDiameter(const RegexQuery& query, uint32_t cap) {
  const Graph& q = query.pattern();
  const size_t nq = q.num_nodes();
  auto edge_weight = [&](NodeId u, NodeId u2) {
    uint64_t total = 0;
    for (const RegexAtom& atom : query.ConstraintFor(u, u2)) {
      total += atom.max_reps == kUnboundedReps
                   ? std::max(atom.min_reps, cap)
                   : atom.max_reps;
    }
    return std::max<uint64_t>(total, 1);
  };
  std::vector<std::vector<std::pair<NodeId, uint64_t>>> adj(nq);
  for (NodeId u = 0; u < nq; ++u) {
    for (NodeId u2 : q.OutNeighbors(u)) {
      const uint64_t w = edge_weight(u, u2);
      adj[u].emplace_back(u2, w);
      adj[u2].emplace_back(u, w);
    }
  }
  uint64_t diameter = 0;
  constexpr uint64_t kInf = UINT64_MAX / 4;
  for (NodeId source = 0; source < nq; ++source) {
    std::vector<uint64_t> dist(nq, kInf);
    dist[source] = 0;
    using Entry = std::pair<uint64_t, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    heap.emplace(0, source);
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > dist[v]) continue;
      for (const auto& [w, weight] : adj[v]) {
        if (d + weight < dist[w]) {
          dist[w] = d + weight;
          heap.emplace(dist[w], w);
        }
      }
    }
    for (uint64_t d : dist) {
      if (d < kInf) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

TEST(DefaultRegexRadiusTest, MatchesBruteForceDiameterOnRandomPatterns) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    // All-bounded atoms: the radius is exactly the brute-force weighted
    // pattern diameter, independent of the unbounded cap.
    const RegexQuery query = RandomRegexPattern(&rng, /*unbounded_prob=*/0);
    SCOPED_TRACE("trial=" + std::to_string(trial));
    EXPECT_EQ(DefaultRegexRadius(query),
              BruteForceWeightedDiameter(query, /*cap=*/4));
    EXPECT_EQ(DefaultRegexRadius(query, /*unbounded_cap=*/1),
              DefaultRegexRadius(query, /*unbounded_cap=*/9))
        << "bounded patterns must ignore the unbounded cap";
  }
}

TEST(DefaultRegexRadiusTest, UnboundedCapMonotonicity) {
  Rng rng(777);
  int patterns_with_unbounded = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const RegexQuery query =
        RandomRegexPattern(&rng, /*unbounded_prob=*/0.4);
    SCOPED_TRACE("trial=" + std::to_string(trial));
    bool has_unbounded = false;
    for (const auto& [edge, path] : query.constraints()) {
      for (const RegexAtom& atom : path) {
        has_unbounded = has_unbounded || atom.max_reps == kUnboundedReps;
      }
    }
    patterns_with_unbounded += has_unbounded ? 1 : 0;
    uint32_t previous = 0;
    for (uint32_t cap = 1; cap <= 8; ++cap) {
      const uint32_t radius = DefaultRegexRadius(query, cap);
      EXPECT_GE(radius, previous) << "cap=" << cap;
      EXPECT_EQ(radius, BruteForceWeightedDiameter(query, cap))
          << "cap=" << cap;
      previous = radius;
    }
  }
  EXPECT_GT(patterns_with_unbounded, 5)
      << "the sweep must actually exercise unbounded atoms";
}

TEST(MatchStrongRegexTest, EdgeTypedSocialExample) {
  // "find a person who *follows* someone within two hops who *employs*
  // them back" — follows = label 1, employs = label 2.
  Graph q = MakeGraph({7, 8}, {{0, 1}, {1, 0}});
  RegexQuery query(std::move(q));
  ASSERT_TRUE(query.SetConstraint(0, 1, {RegexAtom{1, 1, 2}}).ok());
  ASSERT_TRUE(query.SetConstraint(1, 0, {RegexAtom{2, 1, 1}}).ok());
  // person(0) -follows-> person(9, wrong label) -follows-> boss(2);
  // boss(2) -employs-> person(0). Plus a decoy boss without employs.
  Graph g = EdgeLabeledGraph({7, 7, 8, 8},
                             {{0, 1, 1}, {1, 2, 1}, {2, 0, 2}});
  auto result = MatchStrongRegex(query, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(testutil::MatchesOf(*result, 0), (std::set<NodeId>{0}));
  EXPECT_EQ(testutil::MatchesOf(*result, 1), (std::set<NodeId>{2}));
}

}  // namespace
}  // namespace gpm
