// Reader/writer stress: concurrent clients matching through GpmServer
// while a writer churns edit batches. Every served answer must hash-agree
// with every other answer for the same (snapshot, query), every retained
// version must equal a from-scratch match on a cache-less engine, and no
// snapshot may be freed while pinned (reclamation counters prove drain).
// Slow label: multi-second wall-clock by construction.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/engine.h"
#include "common/random.h"
#include "graph/generator.h"
#include "serving/load_driver.h"
#include "serving/server.h"

namespace gpm::serving {
namespace {

struct Rig {
  Engine engine;
  std::vector<std::shared_ptr<const PreparedQuery>> queries;
  std::unique_ptr<GpmServer> server;
};

// A small uniform graph (no hubs, so incremental repair stays local on a
// 1-core container) with a handful of small-diameter patterns.
Rig MakeRig(uint64_t seed, ServerOptions options = {}) {
  Rig rig;
  const Graph data = MakeUniform(/*n=*/350, /*alpha=*/1.3,
                                 /*num_labels=*/6, seed);
  Rng rng(seed * 31 + 7);
  for (uint32_t nq : {6u, 6u, 4u}) {
    auto pattern = ExtractPattern(data, nq, &rng);
    EXPECT_TRUE(pattern.ok());
    auto prepared = rig.engine.PrepareCached(*pattern);
    EXPECT_TRUE(prepared.ok());
    rig.queries.push_back(std::move(prepared).ValueOrDie());
  }
  // The writer maintains the smallest-diameter query — repairs stay local.
  size_t writer = 0;
  for (size_t i = 1; i < rig.queries.size(); ++i) {
    if (rig.queries[i]->diameter() < rig.queries[writer]->diameter()) {
      writer = i;
    }
  }
  options.writer_query_index = writer;
  auto server = GpmServer::Create(rig.engine, rig.queries, data, options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  rig.server = std::make_unique<GpmServer>(std::move(server).ValueOrDie());
  return rig;
}

TEST(ServingStressTest, ReadersStayConsistentUnderWriterChurn) {
  Rig rig = MakeRig(/*seed=*/41);

  LoadOptions options;
  options.client_threads = 3;
  options.duration_seconds = 3.0;
  options.churn_edits_per_second = 6;
  options.churn_batch = 2;
  options.seed = 11;
  options.verify = true;
  // Retain far more versions than the run can publish: the ground-truth
  // audit then covers EVERY version any reader was served from.
  options.verify_retain = 256;

  const LoadReport report = RunLoad(*rig.server, options);
  SCOPED_TRACE(RenderReport(report));

  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.served, 0u);
  EXPECT_GT(report.writer_batches, 0u) << "writer starved: no churn happened";
  EXPECT_GT(report.snapshots_published, 0u);

  // Readers crossed epochs: more than one version was actually served.
  EXPECT_GT(report.versions_seen, 1u);
  EXPECT_EQ(report.versions_retained, report.versions_seen)
      << "retain cap hit; the audit below is no longer exhaustive";

  // Cross-reader consistency: same snapshot + same query -> same answer.
  EXPECT_GT(report.consistency_checked, 0u);
  EXPECT_EQ(report.consistency_mismatches, 0u);

  // Ground truth: every version served equals a from-scratch match.
  EXPECT_GT(report.groundtruth_checked, 0u);
  EXPECT_EQ(report.groundtruth_mismatches, 0u);

  // Reclamation happened (retired epochs drained) — and nothing the
  // verifier retained was corrupted, which a premature free would have
  // tripped in the audit above.
  EXPECT_GT(report.snapshots_reclaimed, 0u);

  const auto metrics = rig.server->metrics();
  EXPECT_EQ(metrics.snapshots.active_pins, 0u);
  EXPECT_EQ(metrics.snapshots.epoch, report.final_epoch);
}

TEST(ServingStressTest, AdmissionShedsLoadWithoutCorruptingResults) {
  ServerOptions server_options;
  server_options.deadline_seconds = 0.25;
  Rig rig = MakeRig(/*seed=*/43, server_options);

  LoadOptions options;
  options.client_threads = 2;
  options.duration_seconds = 1.5;
  options.target_qps = 400;     // far over...
  options.admission_rate = 30;  // ...a tight per-client budget
  options.admission_burst = 5;
  options.churn_edits_per_second = 4;
  options.churn_batch = 2;
  options.seed = 13;
  options.verify_retain = 256;

  const LoadReport report = RunLoad(*rig.server, options);
  SCOPED_TRACE(RenderReport(report));

  EXPECT_EQ(report.errors, 0u);
  EXPECT_GT(report.served, 0u);
  EXPECT_GT(report.rejected, 0u) << "admission never engaged";
  EXPECT_EQ(report.consistency_mismatches, 0u);
  EXPECT_EQ(report.groundtruth_mismatches, 0u);

  // Rejections are cheap refusals: latency quantiles only cover served
  // requests, and the served rate respects the admission budget (2
  // clients x 30/s + burst, with generous slack for timing noise).
  EXPECT_LT(report.qps, 2 * 30 * 1.8 + 20);
}

}  // namespace
}  // namespace gpm::serving
