#include "matching/simulation.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "matching/reference.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;
using testutil::MatchesOf;

TEST(SimulationTest, SingleNodeMatchesByLabel) {
  Graph q = MakeGraph({5}, {});
  Graph g = MakeGraph({5, 5, 6}, {});
  auto s = ComputeSimulation(q, g);
  EXPECT_TRUE(s.IsTotal());
  EXPECT_EQ(MatchesOf(s, 0), (std::set<NodeId>{0, 1}));
}

TEST(SimulationTest, NoLabelMatchMeansEmpty) {
  Graph q = MakeGraph({9}, {});
  Graph g = MakeGraph({5, 6}, {});
  auto s = ComputeSimulation(q, g);
  EXPECT_FALSE(s.IsTotal());
  EXPECT_TRUE(s.IsEmpty());
}

TEST(SimulationTest, ChildConditionFilters) {
  // Pattern a -> b. Node 0 (a) has a b-child; node 2 (a) does not.
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1}, {{0, 1}});
  auto s = ComputeSimulation(q, g);
  EXPECT_EQ(MatchesOf(s, 0), (std::set<NodeId>{0}));
  EXPECT_EQ(MatchesOf(s, 1), (std::set<NodeId>{1}));
}

TEST(SimulationTest, IgnoresParents) {
  // Pattern a -> b: b-match does NOT need an a-parent under plain
  // simulation (node 2 has no parent).
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 2}, {{0, 1}});
  auto s = ComputeSimulation(q, g);
  EXPECT_EQ(MatchesOf(s, 1), (std::set<NodeId>{1, 2}));
}

TEST(SimulationTest, CycleInPatternNeedsCycleOrInfinitePath) {
  // Pattern: a -> a (self loop on label a) requires an infinite outgoing
  // a-path, e.g. a directed cycle of a-nodes.
  Graph q = MakeGraph({1}, {{0, 0}});
  Graph cycle = MakeGraph({1, 1}, {{0, 1}, {1, 0}});
  Graph chain = MakeGraph({1, 1}, {{0, 1}});
  EXPECT_TRUE(GraphSimulates(q, cycle));
  EXPECT_FALSE(GraphSimulates(q, chain));
}

TEST(SimulationTest, LongCycleSimulatesShortCycle) {
  // The paper's observation: a 2-cycle pattern matches any even/odd long
  // cycle of alternating labels via simulation.
  Graph q = MakeGraph({1, 2}, {{0, 1}, {1, 0}});
  Graph g = MakeGraph({1, 2, 1, 2}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_TRUE(GraphSimulates(q, g));
}

TEST(SimulationTest, FanOutPatternSharedChild) {
  // Pattern: a -> b, a -> c. One data child can serve only its own label.
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  Graph good = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  Graph missing_c = MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(GraphSimulates(q, good));
  EXPECT_FALSE(GraphSimulates(q, missing_c));
}

TEST(SimulationTest, MatchesReferenceImplementationOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Graph g = MakeUniform(60, 1.25, 4, seed);
    std::vector<Label> pool{0, 1, 2, 3};
    Graph q = RandomPattern(4, 1.3, pool, seed + 1000);
    auto fast = ComputeSimulation(q, g);
    auto naive = reference::NaiveSimulation(q, g);
    // The reference clears everything the moment one sim set empties (the
    // paper's "return ∅" — match failure). Plain simulation has no parent
    // condition, so the worklist engine's *maximum* relation can keep
    // matches downstream of the failure; both then agree the match fails.
    if (naive.IsEmpty()) {
      EXPECT_FALSE(fast.IsTotal()) << "seed " << seed;
    } else {
      EXPECT_EQ(fast.sim, naive.sim) << "seed " << seed;
    }
    EXPECT_TRUE(reference::IsSimulationRelation(q, g, fast));
  }
}

TEST(SimulationTest, ResultIsMaximal) {
  // Adding any (label-compatible) pair to the computed relation must break
  // the simulation conditions.
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2, 1, 2}, {{0, 1}, {2, 3}, {3, 2}});
  auto s = ComputeSimulation(q, g);
  ASSERT_TRUE(reference::IsSimulationRelation(q, g, s));
  for (NodeId u = 0; u < q.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (q.label(u) != g.label(v) || s.Contains(u, v)) continue;
      MatchRelation bigger = s;
      bigger.sim[u].push_back(v);
      std::sort(bigger.sim[u].begin(), bigger.sim[u].end());
      EXPECT_FALSE(reference::IsSimulationRelation(q, g, bigger))
          << "relation was not maximal: missing (" << u << "," << v << ")";
    }
  }
}

TEST(SimulationTest, EmptyDataGraph) {
  Graph q = MakeGraph({1}, {});
  Graph g;
  g.Finalize();
  EXPECT_FALSE(GraphSimulates(q, g));
}

}  // namespace
}  // namespace gpm
