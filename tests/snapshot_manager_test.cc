// SnapshotManager: the epoch-based snapshot lifecycle — pin/publish/
// reclaim ordering, no-free-while-pinned, slot-table limits, stats, and
// a multi-thread pin/publish hammer.

#include "serving/snapshot_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace gpm::serving {
namespace {

using testutil::MakeGraph;

std::shared_ptr<const Graph> SmallGraph(Label label) {
  return std::make_shared<const Graph>(MakeGraph({label, label}, {{0, 1}}));
}

/// A graph wrapper whose destruction flips a flag — how the tests observe
/// the exact moment reclamation frees a snapshot.
std::shared_ptr<const Graph> TrackedGraph(std::atomic<bool>* freed) {
  return std::shared_ptr<const Graph>(
      new Graph(MakeGraph({1, 2}, {{0, 1}})),
      [freed](const Graph* g) {
        freed->store(true);
        delete g;
      });
}

TEST(SnapshotManagerTest, PinSeesCurrentSnapshotAndEpoch) {
  SnapshotManager manager(SmallGraph(7), /*max_readers=*/4);
  EXPECT_EQ(manager.epoch(), 1u);
  auto reader = manager.RegisterReader();
  ASSERT_TRUE(reader.valid());
  {
    auto pin = reader.PinSnapshot();
    ASSERT_TRUE(pin);
    EXPECT_EQ(pin.epoch(), 1u);
    EXPECT_EQ(pin.graph().label(0), 7u);
  }
  manager.Publish(SmallGraph(9));
  EXPECT_EQ(manager.epoch(), 2u);
  auto pin = reader.PinSnapshot();
  EXPECT_EQ(pin.epoch(), 2u);
  EXPECT_EQ(pin.graph().label(0), 9u);
}

TEST(SnapshotManagerTest, RetiredSnapshotSurvivesWhilePinned) {
  std::atomic<bool> freed{false};
  SnapshotManager manager(TrackedGraph(&freed), /*max_readers=*/4);
  auto reader = manager.RegisterReader();
  auto pin = reader.PinSnapshot();  // pins epoch 1

  manager.Publish(SmallGraph(1));  // retires the tracked snapshot
  manager.TryReclaim();
  EXPECT_FALSE(freed.load()) << "freed while a reader still pinned it";
  EXPECT_EQ(manager.stats().retired_pending, 1u);

  // The pinned borrow still reads valid data.
  EXPECT_EQ(pin.graph().num_nodes(), 2u);

  pin.Release();  // the epoch drains...
  manager.TryReclaim();
  EXPECT_TRUE(freed.load());  // ...and only now is it freed
  EXPECT_EQ(manager.stats().retired_pending, 0u);
  EXPECT_EQ(manager.stats().reclaimed, 1u);
}

TEST(SnapshotManagerTest, QuiescentReadersDoNotHoldAnything) {
  std::atomic<bool> freed{false};
  SnapshotManager manager(TrackedGraph(&freed), /*max_readers=*/4);
  auto reader = manager.RegisterReader();  // registered but never pinned
  manager.Publish(SmallGraph(1));
  EXPECT_TRUE(freed.load()) << "quiescent reader blocked reclamation";
}

TEST(SnapshotManagerTest, RepinMovesToTheNewEpoch) {
  std::atomic<bool> freed{false};
  SnapshotManager manager(TrackedGraph(&freed), /*max_readers=*/4);
  auto reader = manager.RegisterReader();
  auto pin = reader.PinSnapshot();
  manager.Publish(SmallGraph(1));
  // Re-pinning the same reader releases the old era implicitly.
  pin = reader.PinSnapshot();
  EXPECT_EQ(pin.epoch(), 2u);
  manager.TryReclaim();
  EXPECT_TRUE(freed.load());
}

TEST(SnapshotManagerTest, SlotTableIsBounded) {
  SnapshotManager manager(SmallGraph(1), /*max_readers=*/2);
  auto a = manager.RegisterReader();
  auto b = manager.RegisterReader();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(manager.RegisterReader().valid());
  // Destroying a reader frees its slot for the next registration.
  a = SnapshotManager::Reader();
  EXPECT_TRUE(manager.RegisterReader().valid());
}

TEST(SnapshotManagerTest, StatsTrackPinsAndLag) {
  SnapshotManager manager(SmallGraph(1), /*max_readers=*/4);
  auto r1 = manager.RegisterReader();
  auto r2 = manager.RegisterReader();
  auto old_pin = r1.PinSnapshot();  // epoch 1
  manager.Publish(SmallGraph(2));
  manager.Publish(SmallGraph(3));
  auto new_pin = r2.PinSnapshot();  // epoch 3

  const auto stats = manager.stats();
  EXPECT_EQ(stats.epoch, 3u);
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.active_pins, 2u);
  EXPECT_EQ(stats.oldest_pinned_epoch, 1u);  // lag of 2 epochs
  EXPECT_EQ(stats.retired_pending, 2u);      // both held by the old pin
}

TEST(SnapshotManagerTest, ManyVersionsReclaimInOrder) {
  SnapshotManager manager(SmallGraph(0), /*max_readers=*/2);
  auto reader = manager.RegisterReader();
  for (Label v = 1; v <= 20; ++v) {
    auto pin = reader.PinSnapshot();
    EXPECT_EQ(pin.graph().label(0), v - 1);
    manager.Publish(SmallGraph(v));
  }
  const auto stats = manager.stats();
  EXPECT_EQ(stats.published, 20u);
  // Nothing is pinned anymore: everything retired must have been freed.
  manager.TryReclaim();
  EXPECT_EQ(manager.stats().reclaimed, 20u);
  EXPECT_EQ(manager.stats().retired_pending, 0u);
}

TEST(SnapshotManagerTest, ConcurrentPinsNeverSeeFreedData) {
  // 3 reader threads hammer pin/read/release while the writer publishes
  // versioned graphs; every pinned graph must carry a consistent version
  // stamp (labels all equal), which a use-after-free would violate with
  // high probability under ASan/TSan runs.
  constexpr int kReaders = 3;
  constexpr int kVersions = 200;
  auto versioned = [](Label v) {
    return std::make_shared<const Graph>(
        MakeGraph({v, v, v}, {{0, 1}, {1, 2}}));
  };
  SnapshotManager manager(versioned(0), /*max_readers=*/kReaders);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      auto reader = manager.RegisterReader();
      ASSERT_TRUE(reader.valid());
      while (!stop.load(std::memory_order_relaxed)) {
        auto pin = reader.PinSnapshot();
        const Graph& g = pin.graph();
        const Label v = g.label(0);
        ASSERT_EQ(g.label(1), v);
        ASSERT_EQ(g.label(2), v);
        ASSERT_LE(pin.epoch(), manager.epoch());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (Label v = 1; v <= kVersions; ++v) manager.Publish(versioned(v));
  // On a single-core box the publisher can finish before the readers are
  // even scheduled — keep the snapshots live until every thread has read.
  while (reads.load() < kReaders) std::this_thread::yield();
  stop.store(true);
  for (auto& t : threads) t.join();
  manager.TryReclaim();

  const auto stats = manager.stats();
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kVersions) + 1);
  EXPECT_EQ(stats.published, static_cast<uint64_t>(kVersions));
  EXPECT_EQ(stats.reclaimed, static_cast<uint64_t>(kVersions));
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace gpm::serving
