#include "graph/statistics.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(StatisticsTest, EmptyGraph) {
  Graph g;
  g.Finalize();
  auto stats = ComputeStatistics(g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
}

TEST(StatisticsTest, BasicCounts) {
  Graph g = MakeGraph({1, 1, 2}, {{0, 1}, {1, 0}, {0, 2}});
  auto stats = ComputeStatistics(g);
  EXPECT_EQ(stats.num_nodes, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_NEAR(stats.avg_out_degree, 1.0, 1e-9);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.max_in_degree, 1u);
  // 2 of 3 edges are reciprocated (0<->1).
  EXPECT_NEAR(stats.reciprocity, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.num_distinct_labels, 2u);
  EXPECT_NEAR(stats.top_label_share, 2.0 / 3.0, 1e-9);
  EXPECT_EQ(stats.num_components, 1u);
}

TEST(StatisticsTest, GiniZeroForUniformDegrees) {
  // Directed 4-cycle: every in-degree is 1.
  Graph g = MakeGraph({0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto stats = ComputeStatistics(g);
  EXPECT_NEAR(stats.in_degree_gini, 0.0, 1e-9);
}

TEST(StatisticsTest, GiniHighForStar) {
  Graph g;
  for (int i = 0; i < 21; ++i) g.AddNode(0);
  for (NodeId i = 1; i <= 20; ++i) g.AddEdge(i, 0);
  g.Finalize();
  auto stats = ComputeStatistics(g);
  EXPECT_GT(stats.in_degree_gini, 0.9);
}

TEST(StatisticsTest, CopyingModelIsMoreSkewedThanUniform) {
  // The DESIGN.md substitution claim: the Amazon-like generator has
  // heavy-tailed in-degrees; the uniform generator does not.
  auto amazon = ComputeStatistics(MakeAmazonLike(10000, 3));
  auto uniform = ComputeStatistics(MakeUniform(10000, 1.2, 200, 3));
  EXPECT_GT(amazon.in_degree_gini, uniform.in_degree_gini + 0.1);
  EXPECT_GT(amazon.max_in_degree, uniform.max_in_degree);
}

TEST(StatisticsTest, YouTubeLikeIsReciprocal) {
  auto youtube = ComputeStatistics(MakeYouTubeLike(3000, 5));
  auto amazon = ComputeStatistics(MakeAmazonLike(3000, 5));
  EXPECT_GT(youtube.reciprocity, 0.2);
  EXPECT_LT(amazon.reciprocity, 0.15);
}

TEST(StatisticsTest, RenderContainsKeyFields) {
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  const std::string text = RenderStatistics(ComputeStatistics(g));
  EXPECT_NE(text.find("nodes:"), std::string::npos);
  EXPECT_NE(text.find("reciprocity:"), std::string::npos);
  EXPECT_NE(text.find("gini"), std::string::npos);
}

}  // namespace
}  // namespace gpm
