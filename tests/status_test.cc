#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad pattern");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad pattern");
  EXPECT_EQ(s.ToString(), "invalid argument: bad pattern");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk");
  EXPECT_TRUE(s.IsIOError());  // source unchanged
}

TEST(StatusTest, MoveTransfersState) {
  Status s = Status::Corruption("torn page");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsCorruption());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    GPM_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto make = [](bool good) -> Result<int> {
    if (good) return 7;
    return Status::Internal("boom");
  };
  auto sum = [&](bool good) -> Result<int> {
    int a = 0;
    GPM_ASSIGN_OR_RETURN(a, make(good));
    return a + 1;
  };
  ASSERT_TRUE(sum(true).ok());
  EXPECT_EQ(*sum(true), 8);
  EXPECT_FALSE(sum(false).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace gpm
