// Determinism + streaming equivalence suite (the serving-path contract):
//
//   - batch results are byte-identical — same representatives, same order,
//     same relations — across 1/2/4/8 threads and the distributed runtime;
//   - MatchStats counters agree with the serial run for every executor;
//   - streaming delivers the same dedup'd set as batch under every policy,
//     with seconds_to_first_subgraph strictly inside the total wall time;
//   - a sink returning stop halts Parallel and Distributed runs early
//     without deadlock (BoundedQueue / MessageBus shutdown paths).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "api/algo_names.h"
#include "api/engine.h"
#include "distributed/distributed_match.h"
#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "matching/parallel_match.h"
#include "matching/strong_simulation.h"
#include "quality/workloads.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;

bool ByteIdentical(const PerfectSubgraph& a, const PerfectSubgraph& b) {
  return a.center == b.center && a.radius == b.radius &&
         a.nodes == b.nodes && a.edges == b.edges &&
         a.relation == b.relation;
}

void ExpectByteIdentical(const std::vector<PerfectSubgraph>& got,
                         const std::vector<PerfectSubgraph>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(ByteIdentical(got[i], want[i]))
        << "result " << i << " differs (center " << got[i].center << " vs "
        << want[i].center << ")";
  }
}

void ExpectCountersEqual(const MatchStats& got, const MatchStats& want) {
  EXPECT_EQ(got.balls_considered, want.balls_considered);
  EXPECT_EQ(got.balls_skipped_filter, want.balls_skipped_filter);
  EXPECT_EQ(got.balls_skipped_pruning, want.balls_skipped_pruning);
  EXPECT_EQ(got.balls_center_unmatched, want.balls_center_unmatched);
  EXPECT_EQ(got.subgraphs_found, want.subgraphs_found);
  EXPECT_EQ(got.duplicates_removed, want.duplicates_removed);
  EXPECT_EQ(got.candidate_pairs_refined, want.candidate_pairs_refined);
}

// Sorted content view of a streamed (arrival-order) result list.
std::vector<PerfectSubgraph> SortedByContent(std::vector<PerfectSubgraph> v) {
  std::sort(v.begin(), v.end(),
            [](const PerfectSubgraph& a, const PerfectSubgraph& b) {
              if (a.nodes != b.nodes) return a.nodes < b.nodes;
              return a.edges < b.edges;
            });
  return v;
}

TEST(StreamingEquivalenceTest, BatchParallelIsByteIdenticalAcrossThreadCounts) {
  const Graph g = MakeAmazonLike(700, /*seed=*/21);
  auto patterns = MakePatternWorkload(g, 5, 2, /*seed=*/31);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    for (bool dedup : {true, false}) {
      MatchOptions options;
      options.dedup = dedup;
      MatchStats serial_stats;
      auto serial = MatchStrong(q, g, options, &serial_stats);
      ASSERT_TRUE(serial.ok());
      for (size_t threads : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " dedup=" + std::to_string(dedup));
        MatchStats par_stats;
        auto par = MatchStrongParallel(q, g, options, threads, &par_stats);
        ASSERT_TRUE(par.ok());
        ExpectByteIdentical(*par, *serial);
        ExpectCountersEqual(par_stats, serial_stats);
      }
    }
  }
}

TEST(StreamingEquivalenceTest, DistributedBatchIsByteIdenticalToSerial) {
  const Graph g = MakeAmazonLike(500, /*seed=*/23);
  auto patterns = MakePatternWorkload(g, 4, 2, /*seed=*/37);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    auto serial = MatchStrong(q, g);
    ASSERT_TRUE(serial.ok());
    for (uint32_t sites : {1u, 3u}) {
      for (bool parallel : {true, false}) {
        SCOPED_TRACE("sites=" + std::to_string(sites) +
                     " parallel=" + std::to_string(parallel));
        DistributedOptions options;
        options.num_sites = sites;
        options.parallel = parallel;
        auto distributed = MatchStrongDistributed(q, g, options);
        ASSERT_TRUE(distributed.ok());
        ExpectByteIdentical(*distributed, *serial);
      }
    }
  }
}

TEST(StreamingEquivalenceTest, ParallelStreamDeliversTheBatchSet) {
  const Graph g = MakeAmazonLike(700, /*seed=*/21);
  auto patterns = MakePatternWorkload(g, 5, 2, /*seed=*/31);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    MatchStats serial_stats;
    auto serial = MatchStrong(q, g, {}, &serial_stats);
    ASSERT_TRUE(serial.ok());
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      std::vector<PerfectSubgraph> streamed;
      MatchStats stream_stats;
      auto delivered = MatchStrongParallelStream(
          q, g, {}, threads,
          [&streamed](PerfectSubgraph&& pg) {
            streamed.push_back(std::move(pg));
            return true;
          },
          &stream_stats);
      ASSERT_TRUE(delivered.ok());
      EXPECT_EQ(*delivered, serial->size());
      // Arrival order varies; the delivered set must not.
      EXPECT_EQ(CanonicalResult(streamed), CanonicalResult(*serial));
      EXPECT_EQ(SortedByContent(streamed).size(), serial->size());
      ExpectCountersEqual(stream_stats, serial_stats);
      if (*delivered > 0) {
        EXPECT_GT(stream_stats.seconds_to_first_subgraph, 0.0);
        EXPECT_LE(stream_stats.seconds_to_first_subgraph,
                  stream_stats.total_seconds);
      }
    }
  }
}

TEST(StreamingEquivalenceTest, DistributedStreamDeliversTheBatchSet) {
  const Graph g = MakeAmazonLike(500, /*seed=*/23);
  auto patterns = MakePatternWorkload(g, 4, 2, /*seed=*/37);
  ASSERT_FALSE(patterns.empty());
  for (const Graph& q : patterns) {
    auto serial = MatchStrong(q, g);
    ASSERT_TRUE(serial.ok());
    for (bool parallel : {true, false}) {
      SCOPED_TRACE("parallel=" + std::to_string(parallel));
      DistributedOptions options;
      options.num_sites = 3;
      options.parallel = parallel;
      std::vector<PerfectSubgraph> streamed;
      DistributedStats stats;
      auto delivered = MatchStrongDistributedStream(
          q, g, options,
          [&streamed](PerfectSubgraph&& pg) {
            streamed.push_back(std::move(pg));
            return true;
          },
          &stats);
      ASSERT_TRUE(delivered.ok());
      EXPECT_EQ(*delivered, serial->size());
      EXPECT_EQ(CanonicalResult(streamed), CanonicalResult(*serial));
      if (*delivered > 0) {
        EXPECT_GT(stats.seconds_to_first_result, 0.0);
        EXPECT_LE(stats.seconds_to_first_result, stats.seconds);
      }
    }
  }
}

TEST(StreamingEquivalenceTest, EngineStreamsForEveryStrongAlgoAndPolicy) {
  // Engine-level: every strong-family algo × policy × {sink, no-sink}
  // combination returns/delivers the same dedup'd Θ.
  Engine engine;
  const Graph g = MakeAmazonLike(600, /*seed=*/5);
  auto patterns = MakePatternWorkload(g, 5, 1, /*seed=*/99);
  ASSERT_FALSE(patterns.empty());
  auto prepared = engine.Prepare(patterns[0]);
  ASSERT_TRUE(prepared.ok());

  for (Algo algo : {Algo::kStrong, Algo::kStrongPlus}) {
    MatchRequest reference_request;
    reference_request.algo = algo;
    auto reference = engine.Match(*prepared, g, reference_request);
    ASSERT_TRUE(reference.ok());
    const auto want = CanonicalResult(reference->subgraphs);

    for (ExecPolicy policy : {ExecPolicy::Serial(), ExecPolicy::Parallel(4),
                              ExecPolicy::Distributed()}) {
      SCOPED_TRACE(std::string(AlgoName(algo)) + "/" +
                   ExecPolicyName(policy.kind));
      MatchRequest request;
      request.algo = algo;
      request.policy = policy;

      auto batch = engine.Match(*prepared, g, request);
      ASSERT_TRUE(batch.ok());
      EXPECT_EQ(CanonicalResult(batch->subgraphs), want);
      EXPECT_EQ(batch->subgraphs_delivered, reference->subgraphs.size());

      std::vector<PerfectSubgraph> streamed;
      auto stream = engine.Match(*prepared, g, request,
                                 [&streamed](PerfectSubgraph&& pg) {
                                   streamed.push_back(std::move(pg));
                                   return true;
                                 });
      ASSERT_TRUE(stream.ok());
      EXPECT_TRUE(stream->subgraphs.empty());
      EXPECT_EQ(stream->subgraphs_delivered, reference->subgraphs.size());
      EXPECT_EQ(CanonicalResult(streamed), want);
      if (stream->subgraphs_delivered > 0) {
        EXPECT_GT(stream->stats.seconds_to_first_subgraph, 0.0);
        EXPECT_LT(stream->stats.seconds_to_first_subgraph, stream->seconds)
            << "first delivery must land before the run completes";
      }
    }
  }
}

// A pattern triangle over labels 1-2-3 and a data graph of `n` disjoint
// copies of it: n distinct perfect subgraphs, 3n matching ball centers —
// a workload where an early stop always strands unprocessed work.
Graph TrianglePatternGraph() {
  return testutil::MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {2, 0}});
}

Graph ManyTriangles(NodeId n) {
  Graph g;
  for (NodeId i = 0; i < n; ++i) {
    NodeId a = g.AddNode(1), b = g.AddNode(2), c = g.AddNode(3);
    g.AddEdge(a, b);
    g.AddEdge(b, c);
    g.AddEdge(c, a);
  }
  g.Finalize();
  return g;
}

TEST(StreamingEquivalenceTest, SinkStopHaltsParallelWithoutDeadlock) {
  // Plenty of balls and results: the stop lands while shards still hold
  // unprocessed centers, exercising cancellation + queue shutdown. Would
  // deadlock (and time out) if a blocked producer were never woken.
  const Graph g = ManyTriangles(300);
  const Graph q = TrianglePatternGraph();
  auto full = MatchStrong(q, g);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 3u) << "workload must have several results";
  for (size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    size_t seen = 0;
    auto delivered = MatchStrongParallelStream(
        q, g, {}, threads,
        [&seen](PerfectSubgraph&&) {
          ++seen;
          return false;  // stop after the first
        },
        nullptr);
    ASSERT_TRUE(delivered.ok());
    EXPECT_EQ(*delivered, 1u);
    EXPECT_EQ(seen, 1u);
  }
}

TEST(StreamingEquivalenceTest, SinkStopHaltsDistributedWithoutDeadlock) {
  const Graph g = ManyTriangles(150);
  const Graph q = TrianglePatternGraph();
  auto full = MatchStrong(q, g);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->size(), 3u);
  for (bool parallel : {true, false}) {
    SCOPED_TRACE("parallel=" + std::to_string(parallel));
    DistributedOptions options;
    options.num_sites = 4;
    options.parallel = parallel;
    size_t seen = 0;
    auto delivered = MatchStrongDistributedStream(
        q, g, options,
        [&seen](PerfectSubgraph&&) {
          ++seen;
          return false;
        },
        nullptr);
    ASSERT_TRUE(delivered.ok());
    EXPECT_EQ(*delivered, 1u);
    EXPECT_EQ(seen, 1u);
  }
}

TEST(StreamingEquivalenceTest, EngineSinkStopAcrossPolicies) {
  Engine engine;
  const Graph g = ManyTriangles(100);
  const Graph q = TrianglePatternGraph();
  auto prepared = engine.Prepare(q);
  ASSERT_TRUE(prepared.ok());
  for (ExecPolicy policy : {ExecPolicy::Serial(), ExecPolicy::Parallel(4),
                            ExecPolicy::Distributed()}) {
    SCOPED_TRACE(ExecPolicyName(policy.kind));
    MatchRequest request;
    request.algo = Algo::kStrong;
    request.policy = policy;
    size_t seen = 0;
    auto stopped = engine.Match(*prepared, g, request,
                                [&seen](PerfectSubgraph&&) {
                                  ++seen;
                                  return false;
                                });
    ASSERT_TRUE(stopped.ok());
    EXPECT_EQ(seen, 1u);
    EXPECT_EQ(stopped->subgraphs_delivered, 1u);
    EXPECT_TRUE(stopped->matched);
  }
}

}  // namespace
}  // namespace gpm
