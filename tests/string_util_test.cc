#include "common/string_util.h"

#include <gtest/gtest.h>

namespace gpm {
namespace {

TEST(SplitStringTest, SplitsOnWhitespaceDroppingEmpties) {
  auto tokens = SplitString("  a\tbb   c ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "bb");
  EXPECT_EQ(tokens[2], "c");
}

TEST(SplitStringTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(SplitString("").empty());
  EXPECT_TRUE(SplitString("   ").empty());
}

TEST(TrimStringTest, StripsBothEnds) {
  EXPECT_EQ(TrimString("  x y  "), "x y");
  EXPECT_EQ(TrimString("\t\n"), "");
  EXPECT_EQ(TrimString("abc"), "abc");
}

TEST(ParseUint64Test, ParsesValidIntegers) {
  ASSERT_TRUE(ParseUint64("0").ok());
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // overflow
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  ASSERT_TRUE(ParseDouble("1.25").ok());
  EXPECT_DOUBLE_EQ(*ParseDouble("1.25"), 1.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-3e2"), -300.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(ThousandsSeparatorsTest, GroupsDigits) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(0.7312, 2), "0.73");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace gpm
