#include "matching/strong_simulation.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/diameter.h"
#include "graph/generator.h"
#include "matching/dual_simulation.h"
#include "matching/topology.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::CanonicalResult;
using testutil::MakeGraph;

TEST(StrongSimulationTest, RejectsEmptyPattern) {
  Graph q;
  q.Finalize();
  Graph g = MakeGraph({1}, {});
  EXPECT_TRUE(MatchStrong(q, g).status().IsInvalidArgument());
}

TEST(StrongSimulationTest, RejectsDisconnectedPattern) {
  Graph q = MakeGraph({1, 2}, {});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(MatchStrong(q, g).status().IsInvalidArgument());
}

TEST(StrongSimulationTest, SingleNodePatternMatchesEachLabelNode) {
  Graph q = MakeGraph({7}, {});
  Graph g = MakeGraph({7, 7, 8}, {{0, 2}, {2, 1}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  // Radius 0 balls: every label-7 node is its own perfect subgraph.
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(testutil::AllNodes(*result), (std::set<NodeId>{0, 1}));
}

TEST(StrongSimulationTest, ExactMatchIsFound) {
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  Graph g = MakeGraph({1, 2, 3, 9}, {{0, 1}, {1, 2}, {2, 3}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(StrongSimulationTest, NoMatchReturnsEmpty) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 1}, {{0, 1}});
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(StrongSimulationTest, PerfectSubgraphsAreConnected) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = MakeUniform(150, 1.25, 4, seed);
    std::vector<Label> pool{0, 1, 2, 3};
    Graph q = RandomPattern(4, 1.2, pool, seed + 100);
    auto result = MatchStrong(q, g);
    ASSERT_TRUE(result.ok());
    for (const auto& pg : *result) {
      EXPECT_TRUE(IsConnected(pg.AsGraph(g))) << "seed " << seed;
    }
  }
}

TEST(StrongSimulationTest, Proposition3DiameterBound) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = MakeUniform(150, 1.3, 3, seed);
    std::vector<Label> pool{0, 1, 2};
    Graph q = RandomPattern(4, 1.25, pool, seed + 200);
    auto result = MatchStrong(q, g);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(LocalityBounded(q, g, *result)) << "seed " << seed;
  }
}

TEST(StrongSimulationTest, Proposition4CountBound) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = MakeUniform(120, 1.3, 3, seed);
    std::vector<Label> pool{0, 1, 2};
    Graph q = RandomPattern(3, 1.3, pool, seed + 300);
    auto result = MatchStrong(q, g);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(MatchCountBounded(g, *result));
  }
}

TEST(StrongSimulationTest, RelationWithinSubgraphIsDualConsistent) {
  Graph g = MakeUniform(150, 1.25, 3, 7);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(4, 1.2, pool, 77);
  auto result = MatchStrong(q, g);
  ASSERT_TRUE(result.ok());
  for (const auto& pg : *result) {
    // Every query node matched, all matched nodes inside pg.nodes.
    EXPECT_TRUE(pg.relation.IsTotal());
    std::set<NodeId> members(pg.nodes.begin(), pg.nodes.end());
    for (const auto& list : pg.relation.sim) {
      for (NodeId v : list) EXPECT_TRUE(members.count(v));
    }
    EXPECT_TRUE(members.count(pg.center));
  }
}

TEST(StrongSimulationTest, AllOptimizationCombinationsAgree) {
  // Theorem 1 (unique set of maximum perfect subgraphs): every optimization
  // combination must produce the identical result set.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = MakeUniform(120, 1.3, 3, seed);
    std::vector<Label> pool{0, 1, 2};
    Graph q = RandomPattern(4, 1.3, pool, seed + 400);
    auto baseline = MatchStrong(q, g);
    ASSERT_TRUE(baseline.ok());
    const auto canonical = CanonicalResult(*baseline);
    for (int mask = 1; mask < 8; ++mask) {
      MatchOptions options;
      options.minimize_query = mask & 1;
      options.dual_filter = mask & 2;
      options.connectivity_pruning = mask & 4;
      auto variant = MatchStrong(q, g, options);
      ASSERT_TRUE(variant.ok());
      EXPECT_EQ(CanonicalResult(*variant), canonical)
          << "seed " << seed << " option mask " << mask;
    }
  }
}

TEST(StrongSimulationTest, DedupOffYieldsPerBallResults) {
  // A 2-node pattern on its own copy: every matched center yields the same
  // subgraph; dedup collapses them.
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  MatchOptions raw;
  raw.dedup = false;
  auto with_dups = MatchStrong(q, g, raw);
  auto deduped = MatchStrong(q, g);
  ASSERT_TRUE(with_dups.ok());
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(with_dups->size(), 2u);  // one per ball center
  EXPECT_EQ(deduped->size(), 1u);
}

TEST(StrongSimulationTest, RadiusOverrideChangesLocality) {
  // Chain data longer than the pattern diameter: a larger radius admits a
  // bigger perfect subgraph (the paper fixes radius = dQ; the override
  // exists for Lemma 3-style experiments).
  Graph q = MakeGraph({1, 1}, {{0, 1}});  // diameter 1
  Graph g = MakeGraph({1, 1, 1, 1, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto narrow = MatchStrong(q, g);
  MatchOptions wide;
  wide.radius_override = 4;
  auto wider = MatchStrong(q, g, wide);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wider.ok());
  size_t max_narrow = 0, max_wide = 0;
  for (const auto& pg : *narrow) max_narrow = std::max(max_narrow, pg.nodes.size());
  for (const auto& pg : *wider) max_wide = std::max(max_wide, pg.nodes.size());
  EXPECT_LT(max_narrow, max_wide);
}

TEST(StrongSimulationTest, StatsAreFilled) {
  Graph g = MakeUniform(100, 1.2, 3, 1);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 2);
  MatchStats stats;
  auto result = MatchStrong(q, g, {}, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.balls_considered, g.num_nodes());
  EXPECT_GT(stats.pattern_diameter, 0u);
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(StrongSimulationTest, DualFilterSkipsBalls) {
  Graph g = MakeUniform(200, 1.2, 10, 3);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(3, 1.2, pool, 4);
  MatchStats plain_stats, filtered_stats;
  auto plain = MatchStrong(q, g, {}, &plain_stats);
  MatchOptions filt;
  filt.dual_filter = true;
  auto filtered = MatchStrong(q, g, filt, &filtered_stats);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(CanonicalResult(*plain), CanonicalResult(*filtered));
  EXPECT_LT(filtered_stats.balls_considered, plain_stats.balls_considered);
}

TEST(StrongSimulationTest, StronglySimulatesAgreesWithMatch) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph yes = MakeGraph({1, 2}, {{0, 1}});
  Graph no = MakeGraph({1, 2}, {{1, 0}});
  ASSERT_TRUE(StronglySimulates(q, yes).ok());
  EXPECT_TRUE(*StronglySimulates(q, yes));
  EXPECT_FALSE(*StronglySimulates(q, no));
}

}  // namespace
}  // namespace gpm
