#include "isomorphism/tale.h"

#include <gtest/gtest.h>

#include "graph/generator.h"
#include "isomorphism/vf2.h"
#include "quality/closeness.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(TaleTest, ExactMatchIsFound) {
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  Graph g = MakeGraph({1, 2, 3, 9}, {{0, 1}, {0, 2}, {2, 3}});
  auto matches = TaleMatch(q, g);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].matched_nodes, 3u);
}

TEST(TaleTest, ToleratesMissingNode) {
  // Pattern a->{b,c,d}; data lacks d. With rho = 0.25, 3 of 4 matched
  // nodes suffice.
  Graph q = MakeGraph({1, 2, 3, 4}, {{0, 1}, {0, 2}, {0, 3}});
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  TaleOptions loose;
  loose.rho = 0.25;
  auto matches = TaleMatch(q, g, loose);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].matched_nodes, 3u);
  EXPECT_EQ(matches[0].mapping[3], kInvalidNode);
}

TEST(TaleTest, StrictRhoRejectsPartialMatch) {
  Graph q = MakeGraph({1, 2, 3, 4}, {{0, 1}, {0, 2}, {0, 3}});
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}});
  TaleOptions strict;
  strict.rho = 0.0;
  EXPECT_TRUE(TaleMatch(q, g, strict).empty());
}

TEST(TaleTest, NoLabelOverlapMeansNoMatches) {
  Graph q = MakeGraph({7, 8}, {{0, 1}});
  Graph g = MakeGraph({1, 2}, {{0, 1}});
  EXPECT_TRUE(TaleMatch(q, g).empty());
}

TEST(TaleTest, FindsSupersetOfIsomorphismNodes) {
  // Approximate matching is more permissive than exact matching: wherever
  // VF2 embeds an extracted pattern, TALE should match around there too
  // (it probes by anchor label and tolerates slack). We check TALE finds
  // at least as many distinct subgraphs.
  Graph g = MakeAmazonLike(1500, 7);
  Rng rng(8);
  auto q = ExtractPattern(g, 5, &rng);
  ASSERT_TRUE(q.ok());
  auto tale = TaleMatch(*q, g);
  Vf2Options cap;
  cap.max_matches = 10000;
  auto iso = Vf2Enumerate(*q, g, cap);
  EXPECT_GE(CountDistinctSubgraphs(tale),
            std::min<size_t>(1, iso.matches.size()));
}

TEST(TaleTest, ProbeCapBoundsWork) {
  Graph g = MakeYouTubeLike(2000, 9);
  Rng rng(10);
  auto q = ExtractPattern(g, 6, &rng);
  ASSERT_TRUE(q.ok());
  TaleOptions capped;
  capped.max_probes = 5;
  auto matches = TaleMatch(*q, g, capped);
  EXPECT_LE(matches.size(), 5u);
}

TEST(TaleTest, MappingsAreInjectiveOnMatchedNodes) {
  Graph g = MakeAmazonLike(1000, 11);
  Rng rng(12);
  auto q = ExtractPattern(g, 5, &rng);
  ASSERT_TRUE(q.ok());
  for (const auto& m : TaleMatch(*q, g)) {
    auto nodes = m.MatchedDataNodes();
    for (size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_LT(nodes[i - 1], nodes[i]);  // sorted & distinct
    }
    EXPECT_EQ(nodes.size(), m.matched_nodes);
  }
}

}  // namespace
}  // namespace gpm
