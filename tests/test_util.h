// Shared helpers for the gpm test suite.

#ifndef GPM_TESTS_TEST_UTIL_H_
#define GPM_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "matching/match_relation.h"
#include "matching/strong_simulation.h"

namespace gpm::testutil {

/// Builds a finalized graph from per-node labels and an edge list.
inline Graph MakeGraph(std::initializer_list<Label> labels,
                       std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  for (Label l : labels) g.AddNode(l);
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  g.Finalize();
  return g;
}

/// The set of data nodes matched to `query_node` across a relation.
inline std::set<NodeId> MatchesOf(const MatchRelation& s, NodeId query_node) {
  return {s.sim[query_node].begin(), s.sim[query_node].end()};
}

/// Union of all data nodes appearing in the relation.
inline std::set<NodeId> AllMatchedNodes(const MatchRelation& s) {
  std::set<NodeId> out;
  for (const auto& list : s.sim) out.insert(list.begin(), list.end());
  return out;
}

/// Union of all nodes across perfect subgraphs.
inline std::set<NodeId> AllNodes(const std::vector<PerfectSubgraph>& pgs) {
  std::set<NodeId> out;
  for (const auto& pg : pgs) out.insert(pg.nodes.begin(), pg.nodes.end());
  return out;
}

/// Union of data nodes matched to `query_node` across perfect subgraphs.
inline std::set<NodeId> MatchesOf(const std::vector<PerfectSubgraph>& pgs,
                                  NodeId query_node) {
  std::set<NodeId> out;
  for (const auto& pg : pgs) {
    out.insert(pg.relation.sim[query_node].begin(),
               pg.relation.sim[query_node].end());
  }
  return out;
}

/// Canonical form of a result set for cross-option equality checks:
/// the sorted set of (nodes, edges) pairs.
inline std::set<std::pair<std::vector<NodeId>,
                          std::vector<std::pair<NodeId, NodeId>>>>
CanonicalResult(const std::vector<PerfectSubgraph>& pgs) {
  std::set<std::pair<std::vector<NodeId>,
                     std::vector<std::pair<NodeId, NodeId>>>>
      out;
  for (const auto& pg : pgs) out.emplace(pg.nodes, pg.edges);
  return out;
}

}  // namespace gpm::testutil

#endif  // GPM_TESTS_TEST_UTIL_H_
