#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpm {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i)
      pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace gpm
