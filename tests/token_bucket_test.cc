// TokenBucket: deterministic refill/burst semantics via TryAcquireAt's
// explicit clock, plus a multi-thread smoke test of the real-clock path.

#include "serving/token_bucket.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gpm::serving {
namespace {

TEST(TokenBucketTest, StartsFullAndDrains) {
  TokenBucket bucket(/*rate_per_second=*/10, /*burst=*/3);
  EXPECT_TRUE(bucket.TryAcquireAt(0.0));
  EXPECT_TRUE(bucket.TryAcquireAt(0.0));
  EXPECT_TRUE(bucket.TryAcquireAt(0.0));
  EXPECT_FALSE(bucket.TryAcquireAt(0.0));  // burst exhausted
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(/*rate_per_second=*/10, /*burst=*/3);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.TryAcquireAt(0.0));
  EXPECT_FALSE(bucket.TryAcquireAt(0.05));  // 0.5 tokens accrued
  EXPECT_TRUE(bucket.TryAcquireAt(0.1));    // 1 token accrued
  EXPECT_FALSE(bucket.TryAcquireAt(0.1));
  // A long gap refills to the burst cap, not beyond.
  EXPECT_LE(bucket.AvailableAt(100.0), 3.0 + 1e-9);
  EXPECT_TRUE(bucket.TryAcquireAt(100.0));
  EXPECT_TRUE(bucket.TryAcquireAt(100.0));
  EXPECT_TRUE(bucket.TryAcquireAt(100.0));
  EXPECT_FALSE(bucket.TryAcquireAt(100.0));
}

TEST(TokenBucketTest, AdmitsExactBudgetOverWindow) {
  // Over a 1-second window at 50/s with burst 5, exactly burst + rate
  // tokens are grantable.
  TokenBucket bucket(/*rate_per_second=*/50, /*burst=*/5);
  int admitted = 0;
  for (int tick = 0; tick <= 1000; ++tick) {
    if (bucket.TryAcquireAt(tick * 1e-3)) ++admitted;
  }
  EXPECT_GE(admitted, 54);  // +-1 for floating-point boundary rounding
  EXPECT_LE(admitted, 56);
}

TEST(TokenBucketTest, BackwardsTimeRefillsNothing) {
  TokenBucket bucket(/*rate_per_second=*/10, /*burst=*/2);
  EXPECT_TRUE(bucket.TryAcquireAt(5.0));
  EXPECT_TRUE(bucket.TryAcquireAt(5.0));
  EXPECT_FALSE(bucket.TryAcquireAt(4.0));  // clock went backwards
  EXPECT_FALSE(bucket.TryAcquireAt(5.0));
  EXPECT_TRUE(bucket.TryAcquireAt(5.2));  // forward progress refills again
}

TEST(TokenBucketTest, WeightedAcquire) {
  TokenBucket bucket(/*rate_per_second=*/10, /*burst=*/4);
  EXPECT_FALSE(bucket.TryAcquireAt(0.0, 5.0));  // over burst: never grants
  EXPECT_TRUE(bucket.TryAcquireAt(0.0, 4.0));
  EXPECT_FALSE(bucket.TryAcquireAt(0.0, 1.0));
}

TEST(TokenBucketTest, ConcurrentAcquiresNeverOverAdmit) {
  TokenBucket bucket(/*rate_per_second=*/1, /*burst=*/100);
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (bucket.TryAcquire()) admitted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // 100 burst tokens plus at most a few real-time refills (rate 1/s).
  EXPECT_GE(admitted.load(), 100);
  EXPECT_LE(admitted.load(), 105);
}

}  // namespace
}  // namespace gpm::serving
