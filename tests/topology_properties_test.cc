// Randomized property suite for §3.1: the Table 2 criteria and the
// Prop 1 containment chain across matching notions.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "graph/generator.h"
#include "matching/dual_simulation.h"
#include "matching/simulation.h"
#include "matching/strong_simulation.h"
#include "matching/topology.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

struct Workload {
  Graph data;
  Graph pattern;
};

// A seeded data/pattern pair; patterns are extracted so matches exist.
Workload MakeWorkload(uint64_t seed, uint32_t nq = 4) {
  Workload w;
  w.data = MakeUniform(120, 1.3, 3, seed);
  Rng rng(seed + 1);
  auto q = ExtractPattern(w.data, nq, &rng);
  GPM_CHECK(q.ok());
  w.pattern = std::move(*q);
  return w;
}

class TopologySweepTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TopologySweepTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST_P(TopologySweepTest, SimulationPreservesChildrenOnly) {
  Workload w = MakeWorkload(GetParam());
  auto s = ComputeSimulation(w.pattern, w.data);
  if (!s.IsTotal()) GTEST_SKIP();
  EXPECT_TRUE(ChildrenPreserved(w.pattern, w.data, s));
  // Parents preservation is NOT guaranteed for plain simulation; no
  // assertion either way (Table 2 row 1: ×). Counterexamples are pinned
  // in the deterministic tests below.
}

TEST_P(TopologySweepTest, DualSimulationPreservesChildrenAndParents) {
  Workload w = MakeWorkload(GetParam());
  auto s = ComputeDualSimulation(w.pattern, w.data);
  if (!s.IsTotal()) GTEST_SKIP();
  EXPECT_TRUE(ChildrenPreserved(w.pattern, w.data, s));
  EXPECT_TRUE(ParentsPreserved(w.pattern, w.data, s));
  EXPECT_TRUE(ConnectivityPreserved(w.pattern, w.data, s));
  EXPECT_TRUE(DirectedCyclesPreserved(w.pattern, w.data, s));
  EXPECT_TRUE(UndirectedCyclesPreserved(w.pattern, w.data, s));
}

TEST_P(TopologySweepTest, StrongContainedInDualContainedInSim) {
  // Prop 1 (2)(3): every strong-simulation match pair appears in the dual
  // relation; every dual pair appears in the simulation relation.
  Workload w = MakeWorkload(GetParam());
  auto strong = MatchStrong(w.pattern, w.data);
  ASSERT_TRUE(strong.ok());
  auto dual = ComputeDualSimulation(w.pattern, w.data);
  auto sim = ComputeSimulation(w.pattern, w.data);
  for (const auto& pg : *strong) {
    for (NodeId u = 0; u < w.pattern.num_nodes(); ++u) {
      for (NodeId v : pg.relation.sim[u]) {
        EXPECT_TRUE(dual.Contains(u, v));
      }
    }
  }
  for (NodeId u = 0; u < w.pattern.num_nodes(); ++u) {
    for (NodeId v : dual.sim[u]) EXPECT_TRUE(sim.Contains(u, v));
  }
}

TEST_P(TopologySweepTest, StrongSimulationSatisfiesAllCriteria) {
  Workload w = MakeWorkload(GetParam());
  auto strong = MatchStrong(w.pattern, w.data);
  ASSERT_TRUE(strong.ok());
  EXPECT_TRUE(LocalityBounded(w.pattern, w.data, *strong));
  EXPECT_TRUE(MatchCountBounded(w.data, *strong));
  for (const auto& pg : *strong) {
    EXPECT_TRUE(ChildrenPreserved(w.pattern, w.data, pg.relation));
    // Parent witnesses inside a perfect subgraph are constrained to the
    // match-graph edges; ParentsPreserved checks against g, which is
    // implied.
    EXPECT_TRUE(ParentsPreserved(w.pattern, w.data, pg.relation));
  }
}

// --- Deterministic counterexamples pinning the × entries of Table 2 -----

TEST(TopologyCounterexamples, SimulationViolatesParents) {
  // a -> b pattern, orphan b in data: simulation keeps it.
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}});
  Graph g = testutil::MakeGraph({1, 2, 2}, {{0, 1}});
  auto s = ComputeSimulation(q, g);
  ASSERT_TRUE(s.IsTotal());
  EXPECT_FALSE(ParentsPreserved(q, g, s));
}

TEST(TopologyCounterexamples, SimulationViolatesConnectivity) {
  // Connected pattern, match graph spans two components with the second
  // missing a-parents: plain simulation accepts, per-component dual check
  // fails.
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}});
  Graph g = testutil::MakeGraph({1, 2, 2}, {{0, 1}});
  auto s = ComputeSimulation(q, g);
  ASSERT_TRUE(s.IsTotal());
  EXPECT_FALSE(ConnectivityPreserved(q, g, s));
}

TEST(TopologyCounterexamples, SimulationViolatesUndirectedCycles) {
  // Undirected triangle pattern vs tree data (cf. Example 1): simulation
  // matches, but no undirected cycle exists in the match graph.
  Graph q = testutil::MakeGraph({1, 2, 3}, {{0, 1}, {0, 2}, {1, 2}});
  Graph tree = testutil::MakeGraph({1, 2, 3, 3}, {{0, 1}, {0, 2}, {1, 3}});
  auto s = ComputeSimulation(q, tree);
  ASSERT_TRUE(s.IsTotal());
  EXPECT_FALSE(UndirectedCyclesPreserved(q, tree, s));
}

TEST(TopologyCounterexamples, DualSimulationViolatesLocality) {
  // Q3-style 2-cycle pattern vs a long alternating cycle: dual simulation
  // matches the entire cycle — unbounded diameter, no locality. Strong
  // simulation rejects exactly this (Example 2(5) analogue).
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}, {1, 0}});
  Graph g;  // alternating 12-cycle
  for (int i = 0; i < 12; ++i) g.AddNode(i % 2 == 0 ? 1 : 2);
  for (int i = 0; i < 12; ++i) g.AddEdge(i, (i + 1) % 12);
  g.Finalize();
  auto dual = ComputeDualSimulation(q, g);
  EXPECT_TRUE(dual.IsTotal());  // all 12 nodes match
  EXPECT_EQ(dual.NumPairs(), 12u);
  auto strong = MatchStrong(q, g);
  ASSERT_TRUE(strong.ok());
  EXPECT_TRUE(strong->empty());  // locality kills the long cycle
}

TEST(TopologyCounterexamples, DirectedCyclePreservedEvenBySimulation) {
  // Prop 2: a directed cycle in Q forces one in the match graph, already
  // under plain simulation.
  Graph q = testutil::MakeGraph({1, 2}, {{0, 1}, {1, 0}});
  Graph g;  // alternating 8-cycle
  for (int i = 0; i < 8; ++i) g.AddNode(i % 2 == 0 ? 1 : 2);
  for (int i = 0; i < 8; ++i) g.AddEdge(i, (i + 1) % 8);
  g.Finalize();
  auto s = ComputeSimulation(q, g);
  ASSERT_TRUE(s.IsTotal());
  EXPECT_TRUE(DirectedCyclesPreserved(q, g, s));
}

}  // namespace
}  // namespace gpm
