#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

// 0 -> 1 -> 2 -> 3, plus 4 isolated.
Graph Chain() {
  return MakeGraph({0, 0, 0, 0, 0}, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(BfsTest, DirectedFollowsOutEdges) {
  Graph g = Chain();
  auto order = Bfs(g, 0, EdgeDirection::kOut);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0].node, 0u);
  EXPECT_EQ(order[0].distance, 0u);
  EXPECT_EQ(order[3].node, 3u);
  EXPECT_EQ(order[3].distance, 3u);
}

TEST(BfsTest, ReverseFollowsInEdges) {
  Graph g = Chain();
  auto order = Bfs(g, 3, EdgeDirection::kIn);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.back().node, 0u);
  EXPECT_EQ(order.back().distance, 3u);
}

TEST(BfsTest, DirectedMissesUpstreamNodes) {
  Graph g = Chain();
  auto order = Bfs(g, 2, EdgeDirection::kOut);
  EXPECT_EQ(order.size(), 2u);  // 2, 3 only
}

TEST(BfsTest, UndirectedReachesBothDirections) {
  Graph g = Chain();
  auto order = Bfs(g, 2, EdgeDirection::kUndirected);
  EXPECT_EQ(order.size(), 4u);  // everything but the isolated node
}

TEST(BfsTest, MaxDepthTruncates) {
  Graph g = Chain();
  auto order = Bfs(g, 0, EdgeDirection::kOut, 1);
  EXPECT_EQ(order.size(), 2u);
  for (const auto& e : order) EXPECT_LE(e.distance, 1u);
}

TEST(BfsTest, DepthZeroIsJustTheSource) {
  Graph g = Chain();
  auto order = Bfs(g, 1, EdgeDirection::kUndirected, 0);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0].node, 1u);
}

TEST(BfsTest, DistancesAreNonDecreasing) {
  Graph g = MakeGraph({0, 0, 0, 0, 0, 0},
                      {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}});
  auto order = Bfs(g, 0, EdgeDirection::kUndirected);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(order[i].distance, order[i - 1].distance);
  }
}

TEST(UndirectedDistanceTest, ShortestPathIgnoresDirection) {
  // 0 -> 1 <- 2: undirected distance 0..2 is 2.
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {2, 1}});
  EXPECT_EQ(UndirectedDistance(g, 0, 2), 2u);
  EXPECT_EQ(UndirectedDistance(g, 0, 0), 0u);
}

TEST(UndirectedDistanceTest, UnreachableIsInfinite) {
  Graph g = MakeGraph({0, 0}, {});
  EXPECT_EQ(UndirectedDistance(g, 0, 1), kInfiniteDistance);
}

TEST(SingleSourceDistancesTest, MarksUnreachable) {
  Graph g = Chain();
  auto dist = SingleSourceDistances(g, 0, EdgeDirection::kOut);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kInfiniteDistance);
}

TEST(BfsWorkspaceTest, ReusableAcrossRuns) {
  Graph g = Chain();
  BfsWorkspace ws(g.num_nodes());
  std::vector<BfsEntry> out;
  ws.Run(g, 0, EdgeDirection::kOut, kInfiniteDistance, &out);
  EXPECT_EQ(out.size(), 4u);
  ws.Run(g, 4, EdgeDirection::kOut, kInfiniteDistance, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node, 4u);
  ws.Run(g, 0, EdgeDirection::kOut, 2, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(BfsTest, HandlesCycles) {
  Graph g = MakeGraph({0, 0, 0}, {{0, 1}, {1, 2}, {2, 0}});
  auto order = Bfs(g, 0, EdgeDirection::kOut);
  EXPECT_EQ(order.size(), 3u);  // no infinite loop, each node once
}

}  // namespace
}  // namespace gpm
