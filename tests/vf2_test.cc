#include "isomorphism/vf2.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generator.h"
#include "graph/paper_graphs.h"
#include "matching/query_minimization.h"
#include "tests/test_util.h"

namespace gpm {
namespace {

using testutil::MakeGraph;

TEST(Vf2Test, SingleNodeByLabel) {
  Graph q = MakeGraph({5}, {});
  Graph g = MakeGraph({5, 6, 5}, {});
  auto result = Vf2Enumerate(q, g);
  ASSERT_EQ(result.matches.size(), 2u);
  std::set<NodeId> images;
  for (const auto& m : result.matches) images.insert(m.mapping[0]);
  EXPECT_EQ(images, (std::set<NodeId>{0, 2}));
}

TEST(Vf2Test, EdgeMustBePreserved) {
  Graph q = MakeGraph({1, 2}, {{0, 1}});
  Graph forward = MakeGraph({1, 2}, {{0, 1}});
  Graph backward = MakeGraph({1, 2}, {{1, 0}});
  EXPECT_TRUE(Vf2Exists(q, forward));
  EXPECT_FALSE(Vf2Exists(q, backward));
}

TEST(Vf2Test, InjectivityEnforced) {
  // Two query a-nodes pointing at one b need two distinct data a-nodes.
  Graph q = MakeGraph({1, 1, 2}, {{0, 2}, {1, 2}});
  Graph one_parent = MakeGraph({1, 2}, {{0, 1}});
  Graph two_parents = MakeGraph({1, 1, 2}, {{0, 2}, {1, 2}});
  EXPECT_FALSE(Vf2Exists(q, one_parent));
  EXPECT_TRUE(Vf2Exists(q, two_parents));
}

TEST(Vf2Test, MonomorphismIgnoresExtraEdges) {
  // Pattern path a->b->c embeds into a triangle with the extra edge c->a.
  Graph q = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  Graph g = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(Vf2Exists(q, g, /*induced=*/false));
  // Induced mode rejects: (c,a) is a non-edge of q mapped onto an edge.
  EXPECT_FALSE(Vf2Exists(q, g, /*induced=*/true));
}

TEST(Vf2Test, CountsAllEmbeddingsOfTriangleInK4Pattern) {
  // Directed 3-cycle in a graph holding two of them sharing no nodes.
  Graph q = MakeGraph({1, 1, 1}, {{0, 1}, {1, 2}, {2, 0}});
  Graph g = MakeGraph({1, 1, 1, 1, 1, 1},
                      {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  auto result = Vf2Enumerate(q, g);
  // Each 3-cycle admits 3 rotations: 6 embeddings total.
  EXPECT_EQ(result.matches.size(), 6u);
}

TEST(Vf2Test, MatchCapStopsEnumeration) {
  Graph q = MakeGraph({1}, {});
  Graph g = MakeGraph({1, 1, 1, 1, 1}, {});
  Vf2Options options;
  options.max_matches = 3;
  auto result = Vf2Enumerate(q, g, options);
  EXPECT_EQ(result.matches.size(), 3u);
  EXPECT_TRUE(result.hit_match_cap);
}

TEST(Vf2Test, PatternLargerThanDataNeverMatches) {
  Graph q = MakeGraph({1, 1}, {{0, 1}});
  Graph g = MakeGraph({1}, {});
  EXPECT_TRUE(Vf2Enumerate(q, g).matches.empty());
}

TEST(Vf2Test, Fig1HasNoIsomorphicMatch) {
  // Example 1: "no subgraph of G1 is isomorphic to Q1" — the DM<->AI
  // 2-cycle has no counterpart.
  paper::Example ex = paper::Fig1();
  EXPECT_FALSE(Vf2Exists(ex.pattern, ex.data));
}

TEST(Vf2Test, Fig2Q2HasTwoMatchGraphs) {
  paper::Example ex = paper::Fig2Q2();
  auto result = Vf2Enumerate(ex.pattern, ex.data);
  EXPECT_EQ(result.matches.size(), 2u);
}

TEST(Vf2Test, Fig2Q4HasFourMatchGraphs) {
  paper::Example ex = paper::Fig2Q4();
  auto result = Vf2Enumerate(ex.pattern, ex.data);
  EXPECT_EQ(result.matches.size(), 4u);
}

TEST(Vf2Test, ExtractedPatternAlwaysEmbeds) {
  // ExtractPattern returns induced subgraphs: the identity embedding
  // exists, so VF2 must find at least one match.
  Graph g = MakeAmazonLike(2000, 3);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    auto q = ExtractPattern(g, 6, &rng);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(Vf2Exists(*q, g)) << "iteration " << i;
  }
}

TEST(Vf2Test, EmbeddingsAreValid) {
  Graph g = MakeUniform(200, 1.3, 3, 5);
  std::vector<Label> pool{0, 1, 2};
  Graph q = RandomPattern(4, 1.3, pool, 6);
  auto result = Vf2Enumerate(q, g);
  for (const auto& m : result.matches) {
    std::set<NodeId> distinct(m.mapping.begin(), m.mapping.end());
    EXPECT_EQ(distinct.size(), q.num_nodes());  // injective
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      EXPECT_EQ(q.label(u), g.label(m.mapping[u]));
      for (NodeId u2 : q.OutNeighbors(u)) {
        EXPECT_TRUE(g.HasEdge(m.mapping[u], m.mapping[u2]));
      }
    }
  }
}

TEST(AreIsomorphicTest, DetectsIsomorphicAndNot) {
  Graph a = MakeGraph({1, 2, 3}, {{0, 1}, {1, 2}});
  Graph b = MakeGraph({3, 2, 1}, {{2, 1}, {1, 0}});  // same shape, renumbered
  Graph c = MakeGraph({1, 2, 3}, {{0, 1}, {2, 1}});
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(a, c));
}

TEST(AreIsomorphicTest, MinQResultIsCanonicalUpToIsomorphism) {
  // Lemma 2: the minimum equivalent pattern is unique up to isomorphism;
  // minimizing a pattern and a node-renumbered copy must agree.
  paper::Example ex = paper::Fig6aQ5();
  auto mq = MinimizeQuery(ex.data);
  ASSERT_TRUE(mq.ok());
  EXPECT_TRUE(AreIsomorphic(mq->minimized, ex.pattern));
}

}  // namespace
}  // namespace gpm
