#!/usr/bin/env python3
"""Diff/plot BENCH_*.json snapshots across PRs.

Every bench harness writes a machine-readable BENCH_<id>.json (see
bench/bench_json.h): {"bench": id, "entries": [{"name", "seconds",
"stats"?: {...,"total_seconds", "seconds_to_first_subgraph", ...}}]}.
This tool compares two or more snapshot directories (or explicit files)
entry-by-entry, prints the wall-second and time-to-first-subgraph deltas,
and ends with a one-line regression summary suitable for CI logs.

Usage:
  bench_trend.py BASELINE_DIR CURRENT_DIR [MORE_DIRS...]
  bench_trend.py --threshold 15 --fail-on-regression old/ new/
  bench_trend.py --plot old/ mid/ new/        # ASCII trend per entry

A "snapshot" is a directory containing BENCH_*.json files (one per
harness run, e.g. a PR's artifact dir) or a single .json file. Entries
are matched by (bench id, entry name); entries present in only one
snapshot are reported but not counted as regressions.
"""

import argparse
import glob
import json
import os
import sys


def load_snapshot(path):
    """Returns {(bench, name): entry-dict} for one file or directory."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    entries = {}
    for fname in files:
        try:
            with open(fname) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {fname}: {e}", file=sys.stderr)
            continue
        bench = doc.get("bench", os.path.basename(fname))
        for entry in doc.get("entries", []):
            entries[(bench, entry.get("name", "?"))] = entry
    return entries


def first_result_seconds(entry):
    stats = entry.get("stats") or {}
    value = stats.get("seconds_to_first_subgraph", 0.0)
    return value if value > 0 else None


def pct(old, new):
    if old <= 0:
        return 0.0
    return 100.0 * (new - old) / old


def fmt_pct(p):
    return f"{p:+.1f}%"


def sparkline(values):
    """ASCII trend: one glyph per snapshot, scaled to the entry's range."""
    glyphs = "▁▂▃▄▅▆▇█"
    finite = [v for v in values if v is not None]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if v is None:
            out.append("·")
        elif span <= 0:
            out.append(glyphs[0])
        else:
            out.append(glyphs[min(7, int(8 * (v - lo) / span))])
    return "".join(out)


def main():
    parser = argparse.ArgumentParser(
        description="Diff/plot BENCH_*.json across PRs")
    parser.add_argument("snapshots", nargs="+",
                        help="two or more snapshot dirs (or .json files), "
                             "oldest first")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in %% of wall seconds "
                             "(default: 10)")
    parser.add_argument("--min-seconds", type=float, default=0.005,
                        help="ignore entries faster than this in both "
                             "snapshots — pure noise (default: 0.005)")
    parser.add_argument("--plot", action="store_true",
                        help="print an ASCII trend across all snapshots "
                             "instead of just the endpoint diff")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any regression exceeds the "
                             "threshold")
    args = parser.parse_args()

    if len(args.snapshots) < 2:
        parser.error("need at least two snapshots to diff")
    snaps = [load_snapshot(p) for p in args.snapshots]
    base, cur = snaps[0], snaps[-1]

    keys = sorted(set(base) | set(cur))
    if not keys:
        print("bench-trend: no BENCH_*.json entries found")
        return 0

    regressions, improvements, compared = [], [], 0
    only_base = [k for k in keys if k not in cur]
    only_cur = [k for k in keys if k not in base]

    name_w = max(len(f"{b}/{n}") for b, n in keys)
    header = (f"{'entry':<{name_w}}  {'old(s)':>9}  {'new(s)':>9}  "
              f"{'Δwall':>8}  {'first(s)':>9}  {'Δfirst':>8}")
    print(header)
    print("-" * len(header))
    for key in keys:
        label = f"{key[0]}/{key[1]}"
        if key in only_base:
            print(f"{label:<{name_w}}  {base[key]['seconds']:>9.3f}  "
                  f"{'gone':>9}")
            continue
        if key in only_cur:
            print(f"{label:<{name_w}}  {'new':>9}  "
                  f"{cur[key]['seconds']:>9.3f}")
            continue
        old_s, new_s = base[key]["seconds"], cur[key]["seconds"]
        if old_s < args.min_seconds and new_s < args.min_seconds:
            continue
        compared += 1
        delta = pct(old_s, new_s)
        old_f, new_f = first_result_seconds(base[key]), \
            first_result_seconds(cur[key])
        first_col = f"{new_f:>9.4f}" if new_f is not None else f"{'-':>9}"
        dfirst_col = (fmt_pct(pct(old_f, new_f))
                      if old_f is not None and new_f is not None else "-")
        trend = ""
        if args.plot:
            series = [s[key]["seconds"] if key in s else None for s in snaps]
            trend = "  " + sparkline(series)
        print(f"{label:<{name_w}}  {old_s:>9.3f}  {new_s:>9.3f}  "
              f"{fmt_pct(delta):>8}  {first_col}  {dfirst_col:>8}{trend}")
        if delta > args.threshold:
            regressions.append((label, delta))
        elif delta < -args.threshold:
            improvements.append((label, delta))

    regressions.sort(key=lambda r: -r[1])
    worst = (f", worst {regressions[0][0]} {fmt_pct(regressions[0][1])}"
             if regressions else "")
    churn = (f", {len(only_cur)} added, {len(only_base)} removed"
             if only_cur or only_base else "")
    # The one-liner CI greps for.
    print(f"bench-trend: {compared} compared, {len(regressions)} "
          f"regression(s) >{args.threshold:g}%{worst}, "
          f"{len(improvements)} improved{churn}")
    return 1 if args.fail_on_regression and regressions else 0


if __name__ == "__main__":
    sys.exit(main())
