#!/usr/bin/env bash
# Pre-merge gate: build, fast tests, and the serving-path perf regression
# check against the committed BENCH snapshot.
#
#   tools/ci_check.sh            # fast gate (default)
#   GPM_CI_SLOW=1 tools/ci_check.sh   # also run the slow-labeled suites
#   GPM_CI_UPDATE_BASELINE=1 tools/ci_check.sh   # refresh the snapshot
#
# The perf gate compares bench/serving_path against
# bench_baselines/serving_path/BENCH_serving_path.json via
# tools/bench_trend.py --fail-on-regression. Wall-clock thresholds are
# machine-dependent, so the gate uses a generous 50% threshold: it exists
# to catch the serving path falling off a cliff (a cache stops hitting, a
# batch stops sharing), not 5% jitter.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${GPM_BUILD_DIR:-build}"
BASELINE_DIR="bench_baselines/serving_path"
SNAPSHOT_DIR="$BUILD_DIR/bench_json_ci"

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

echo "== fast tests (ctest -L fast) =="
ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$(nproc)"

if [[ "${GPM_CI_SLOW:-0}" == "1" ]]; then
  echo "== slow tests (ctest -L slow) =="
  ctest --test-dir "$BUILD_DIR" -L slow --output-on-failure -j "$(nproc)"
fi

echo "== serving-path bench =="
rm -rf "$SNAPSHOT_DIR" && mkdir -p "$SNAPSHOT_DIR"
(cd "$SNAPSHOT_DIR" && "../../$BUILD_DIR/bench/serving_path" > serving_path.log) || {
  cat "$SNAPSHOT_DIR/serving_path.log"
  echo "ci_check: serving_path bench failed" >&2
  exit 1
}
# The bench's own SHAPE-CHECK lines double as correctness gates.
if grep -q "\[MISS\]" "$SNAPSHOT_DIR/serving_path.log"; then
  cat "$SNAPSHOT_DIR/serving_path.log"
  echo "ci_check: serving_path SHAPE-CHECK miss" >&2
  exit 1
fi

if [[ "${GPM_CI_UPDATE_BASELINE:-0}" == "1" ]]; then
  mkdir -p "$BASELINE_DIR"
  cp "$SNAPSHOT_DIR"/BENCH_serving_path.json "$BASELINE_DIR/"
  echo "ci_check: baseline refreshed in $BASELINE_DIR"
elif [[ -d "$BASELINE_DIR" ]]; then
  echo "== bench trend vs $BASELINE_DIR =="
  python3 tools/bench_trend.py --threshold 50 --fail-on-regression \
    "$BASELINE_DIR" "$SNAPSHOT_DIR"
else
  echo "ci_check: no baseline in $BASELINE_DIR (run with" \
       "GPM_CI_UPDATE_BASELINE=1 to create one)"
fi

echo "ci_check: OK"
