#!/usr/bin/env bash
# Pre-merge gate: build, fast tests, and the perf-regression checks of
# the gated benches against their committed BENCH snapshots.
#
#   tools/ci_check.sh            # fast gate (default)
#   GPM_CI_SLOW=1 tools/ci_check.sh   # also run the slow-labeled suites
#   GPM_CI_TSAN=1 tools/ci_check.sh   # ThreadSanitizer build + fast tests
#   GPM_CI_ASAN=1 tools/ci_check.sh   # ASan+UBSan build + fast tests
#   GPM_CI_UPDATE_BASELINE=1 tools/ci_check.sh   # refresh the snapshots
#
# The perf gates compare each bench in GATED_BENCHES against its
# bench_baselines/<bench>/BENCH_<bench>.json via
# tools/bench_trend.py --fail-on-regression. Wall-clock thresholds are
# machine-dependent, so the gate uses a generous 50% threshold: it exists
# to catch a path falling off a cliff (a cache stops hitting, a batch
# stops sharing, an executor stops scaling), not 5% jitter. Each bench's
# own SHAPE-CHECK lines double as correctness gates.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${GPM_BUILD_DIR:-build}"
GATED_BENCHES=(serving_path regex_scaling incremental_updates serving_load cross_query)

# TSan mode: a separate -DGPM_TSAN=ON build tree running the fast suite
# (which includes the serving concurrency tests — the reason this mode
# exists). Benches are skipped: their wall-clock under TSan says nothing.
if [[ "${GPM_CI_TSAN:-0}" == "1" ]]; then
  TSAN_DIR="${GPM_TSAN_BUILD_DIR:-build-tsan}"
  echo "== TSan configure + build ($TSAN_DIR) =="
  cmake -B "$TSAN_DIR" -S . -DGPM_TSAN=ON >/dev/null
  cmake --build "$TSAN_DIR" -j >/dev/null
  echo "== TSan fast tests (ctest -L fast) =="
  ctest --test-dir "$TSAN_DIR" -L fast --output-on-failure -j "$(nproc)"
  echo "ci_check: TSan OK"
  exit 0
fi

# ASan+UBSan mode: a separate -DGPM_ASAN=ON build tree running the fast
# suite — lifetime/bounds coverage for the lock-free ring and the
# per-worker scratch arenas, which TSan cannot see. Benches are skipped
# for the same reason as under TSan.
if [[ "${GPM_CI_ASAN:-0}" == "1" ]]; then
  ASAN_DIR="${GPM_ASAN_BUILD_DIR:-build-asan}"
  echo "== ASan configure + build ($ASAN_DIR) =="
  cmake -B "$ASAN_DIR" -S . -DGPM_ASAN=ON >/dev/null
  cmake --build "$ASAN_DIR" -j >/dev/null
  echo "== ASan fast tests (ctest -L fast) =="
  ctest --test-dir "$ASAN_DIR" -L fast --output-on-failure -j "$(nproc)"
  echo "ci_check: ASan OK"
  exit 0
fi

echo "== configure + build =="
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

echo "== fast tests (ctest -L fast) =="
ctest --test-dir "$BUILD_DIR" -L fast --output-on-failure -j "$(nproc)"

if [[ "${GPM_CI_SLOW:-0}" == "1" ]]; then
  echo "== slow tests (ctest -L slow) =="
  ctest --test-dir "$BUILD_DIR" -L slow --output-on-failure -j "$(nproc)"
fi

for bench in "${GATED_BENCHES[@]}"; do
  baseline_dir="bench_baselines/$bench"
  snapshot_dir="$BUILD_DIR/bench_json_ci/$bench"
  echo "== $bench bench =="
  rm -rf "$snapshot_dir" && mkdir -p "$snapshot_dir"
  (cd "$snapshot_dir" && "../../../$BUILD_DIR/bench/$bench" > "$bench.log") || {
    cat "$snapshot_dir/$bench.log"
    echo "ci_check: $bench bench failed" >&2
    exit 1
  }
  if grep -q "\[MISS\]" "$snapshot_dir/$bench.log"; then
    cat "$snapshot_dir/$bench.log"
    echo "ci_check: $bench SHAPE-CHECK miss" >&2
    exit 1
  fi

  if [[ "${GPM_CI_UPDATE_BASELINE:-0}" == "1" ]]; then
    mkdir -p "$baseline_dir"
    cp "$snapshot_dir/BENCH_$bench.json" "$baseline_dir/"
    echo "ci_check: baseline refreshed in $baseline_dir"
  elif [[ -d "$baseline_dir" ]]; then
    echo "== bench trend vs $baseline_dir =="
    python3 tools/bench_trend.py --threshold 50 --fail-on-regression \
      "$baseline_dir" "$snapshot_dir"
  else
    echo "ci_check: no baseline in $baseline_dir (run with" \
         "GPM_CI_UPDATE_BASELINE=1 to create one)"
  fi
done

echo "ci_check: OK"
