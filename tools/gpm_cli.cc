// gpm command-line tool: generate datasets, inspect them, and run any of
// the library's matchers from the shell.
//
//   gpm_cli generate --kind amazon --nodes 10000 --seed 7 --out data.g
//   gpm_cli stats data.g
//   gpm_cli extract --nodes 6 --seed 3 --graph data.g --out pattern.g
//   gpm_cli match --algo strong+ --pattern pattern.g --graph data.g
//   gpm_cli batch --patterns p1.g,p2.g --graph data.g --repeat 3
//   gpm_cli watch --pattern pattern.g --graph data.g --updates 20
//   gpm_cli minimize --pattern pattern.g
//
// Graphs use the text format of graph/graph_io.h.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/algo_names.h"
#include "api/engine.h"
#include "common/string_util.h"
#include "extensions/ranking.h"
#include "extensions/regex_pattern.h"
#include "graph/generator.h"
#include "graph/graph_io.h"
#include "graph/statistics.h"
#include "matching/query_minimization.h"
#include "quality/closeness.h"
#include "quality/workloads.h"
#include "serving/load_driver.h"

namespace gpm {
namespace {

// Minimal --flag value parser: flags[name] = value; positionals in order.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args Parse(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[token.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(std::move(token));
      }
    }
    return args;
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  gpm_cli generate --kind amazon|youtube|uniform --nodes N\n"
               "          [--seed S] [--labels L] [--alpha A] --out FILE\n"
               "  gpm_cli stats FILE\n"
               "  gpm_cli extract --graph FILE --nodes N [--seed S] --out FILE\n"
               "  gpm_cli match --algo %s\n"
               "          --pattern FILE --graph FILE [--top K]\n"
               "          [--threads N] [--sites N] [--repeat R]\n"
               "          [--regex \"u-v:l{min,max}[+...][;...]\"]\n"
               "          (--regex runs regex-strong; l is an edge label\n"
               "           or '*', max may be '~' for unbounded)\n"
               "  gpm_cli batch --patterns FILE[,FILE...] --graph FILE\n"
               "          [--algo NAME] [--threads N] [--repeat R]\n"
               "  gpm_cli watch --pattern FILE --graph FILE [--updates N]\n"
               "          [--batch B] [--threads N] [--seed S]\n"
               "          (continuous query: random edge updates repair\n"
               "           only the affected balls; deltas are printed)\n"
               "  gpm_cli algos\n"
               "  gpm_cli minimize --pattern FILE [--out FILE]\n"
               "  gpm_cli loadgen [--graph FILE | --kind K --nodes N]\n"
               "          [--patterns FILE[,FILE...] | --npatterns P\n"
               "           --pnodes NQ] [--algo NAME] [--threads T]\n"
               "          [--duration SECONDS] [--qps PER_CLIENT]\n"
               "          [--churn EDITS_PER_S] [--batch B]\n"
               "          [--deadline-ms MS] [--rate TOKENS_PER_S]\n"
               "          [--burst B] [--seed S]\n"
               "          (serving load: T client threads against a\n"
               "           GpmServer; --churn adds a writer publishing\n"
               "           snapshot epochs; --rate throttles admission)\n",
               AlgoNameList().c_str());
  return 2;
}

// The algorithm menu, straight from the table the engine dispatches on.
int RunAlgos() {
  for (const AlgoSpec& spec : AlgorithmTable()) {
    std::printf("  %-12s %s [%s]\n", spec.name, spec.summary,
                ExecPolicyName(spec.policy));
  }
  return 0;
}

int RunGenerate(const Args& args) {
  const std::string kind = args.Get("kind", "uniform");
  auto nodes = ParseUint64(args.Get("nodes", "1000"));
  auto seed = ParseUint64(args.Get("seed", "1"));
  auto labels = ParseUint64(args.Get("labels", "200"));
  auto alpha = ParseDouble(args.Get("alpha", "1.2"));
  const std::string out = args.Get("out", "");
  if (!nodes.ok() || !seed.ok() || !labels.ok() || !alpha.ok())
    return Fail("bad numeric flag");
  if (out.empty()) return Fail("--out is required");

  Graph g;
  if (kind == "amazon") {
    g = MakeAmazonLike(static_cast<uint32_t>(*nodes), *seed,
                       static_cast<uint32_t>(*labels));
  } else if (kind == "youtube") {
    g = MakeYouTubeLike(static_cast<uint32_t>(*nodes), *seed,
                        static_cast<uint32_t>(*labels));
  } else if (kind == "uniform") {
    g = MakeUniform(static_cast<uint32_t>(*nodes), *alpha,
                    static_cast<uint32_t>(*labels), *seed);
  } else {
    return Fail("unknown --kind '" + kind + "'");
  }
  Status s = SaveGraph(g, out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("wrote %zu nodes, %zu edges to %s\n", g.num_nodes(),
              g.num_edges(), out.c_str());
  return 0;
}

int RunStats(const Args& args) {
  if (args.positional.empty()) return Fail("stats needs a graph file");
  auto g = LoadGraph(args.positional[0]);
  if (!g.ok()) return Fail(g.status().ToString());
  std::printf("%s", RenderStatistics(ComputeStatistics(*g)).c_str());
  return 0;
}

int RunExtract(const Args& args) {
  auto nodes = ParseUint64(args.Get("nodes", "6"));
  auto seed = ParseUint64(args.Get("seed", "1"));
  const std::string graph_path = args.Get("graph", "");
  const std::string out = args.Get("out", "");
  if (!nodes.ok() || !seed.ok()) return Fail("bad numeric flag");
  if (graph_path.empty() || out.empty())
    return Fail("--graph and --out are required");
  auto g = LoadGraph(graph_path);
  if (!g.ok()) return Fail(g.status().ToString());
  Rng rng(*seed);
  auto q = ExtractPattern(*g, static_cast<uint32_t>(*nodes), &rng);
  if (!q.ok()) return Fail(q.status().ToString());
  Status s = SaveGraph(*q, out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("extracted a %zu-node pattern to %s\n", q->num_nodes(),
              out.c_str());
  return 0;
}

// Two lines of cache telemetry after a repeated/batched run: the LRU
// hit ratios, then the cross-query reuse counters (isomorphic results
// served, containment-seeded filters, per-ball relations shared).
void PrintCacheStats(const Engine& engine) {
  const EngineCacheStats cache = engine.cache_stats();
  std::printf("caches: prepared %llu/%llu hits, filter %llu/%llu hits, "
              "regex filter %llu/%llu hits, results %llu/%llu hits, "
              "csr %llu/%llu hits, aux %llu/%llu hits\n",
              static_cast<unsigned long long>(cache.prepared.hits),
              static_cast<unsigned long long>(cache.prepared.lookups),
              static_cast<unsigned long long>(cache.filter.hits),
              static_cast<unsigned long long>(cache.filter.lookups),
              static_cast<unsigned long long>(cache.regex_filter.hits),
              static_cast<unsigned long long>(cache.regex_filter.lookups),
              static_cast<unsigned long long>(cache.results.hits),
              static_cast<unsigned long long>(cache.results.lookups),
              static_cast<unsigned long long>(cache.csr.hits),
              static_cast<unsigned long long>(cache.csr.lookups),
              static_cast<unsigned long long>(cache.aux.hits),
              static_cast<unsigned long long>(cache.aux.lookups));
  std::printf("cross-query: %llu equivalent results served, %llu filters "
              "seeded by containment, %llu ball relations shared, "
              "%zu patterns indexed\n",
              static_cast<unsigned long long>(cache.equivalent_result_hits),
              static_cast<unsigned long long>(cache.containment_filter_seeds),
              static_cast<unsigned long long>(cache.dual_relations_shared),
              cache.cross_query_entries);
}

// Parses the --regex spec ("u-v:l{min,max}[+atom...][;edge...]") against
// the loaded pattern graph. 'l' is a numeric edge label or '*' (any);
// max '~' means unbounded.
Result<RegexQuery> ParseRegexSpec(const Graph& pattern,
                                  const std::string& spec) {
  RegexQuery query(pattern);
  for (std::string_view edge_spec : SplitString(spec, ";")) {
    if (edge_spec.empty()) continue;
    const size_t dash = edge_spec.find('-');
    const size_t colon = edge_spec.find(':', dash);
    if (dash == std::string_view::npos || colon == std::string_view::npos) {
      return Status::InvalidArgument("bad --regex edge spec '" +
                                     std::string(edge_spec) + "'");
    }
    GPM_ASSIGN_OR_RETURN(uint64_t u,
                         ParseUint64(std::string(edge_spec.substr(0, dash))));
    GPM_ASSIGN_OR_RETURN(
        uint64_t v,
        ParseUint64(std::string(edge_spec.substr(dash + 1, colon - dash - 1))));
    RegexPath path;
    for (std::string_view atom_spec :
         SplitString(edge_spec.substr(colon + 1), "+")) {
      const size_t open = atom_spec.find('{');
      const size_t comma = atom_spec.find(',', open);
      const size_t close = atom_spec.find('}', comma);
      if (open == std::string_view::npos || comma == std::string_view::npos ||
          close == std::string_view::npos) {
        return Status::InvalidArgument("bad --regex atom '" +
                                       std::string(atom_spec) + "'");
      }
      RegexAtom atom;
      const std::string label(atom_spec.substr(0, open));
      if (label == "*") {
        atom.label = kAnyEdgeLabel;
      } else {
        GPM_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint64(label));
        atom.label = static_cast<EdgeLabel>(parsed);
      }
      GPM_ASSIGN_OR_RETURN(
          uint64_t min_reps,
          ParseUint64(std::string(atom_spec.substr(open + 1, comma - open - 1))));
      atom.min_reps = static_cast<uint32_t>(min_reps);
      const std::string max(atom_spec.substr(comma + 1, close - comma - 1));
      if (max == "~") {
        atom.max_reps = kUnboundedReps;
      } else {
        GPM_ASSIGN_OR_RETURN(uint64_t parsed, ParseUint64(max));
        atom.max_reps = static_cast<uint32_t>(parsed);
      }
      path.push_back(atom);
    }
    GPM_RETURN_NOT_OK(query.SetConstraint(static_cast<NodeId>(u),
                                          static_cast<NodeId>(v),
                                          std::move(path)));
  }
  return query;
}

int RunMatch(const Args& args) {
  const std::string algo = args.Get("algo", "strong+");
  const std::string pattern_path = args.Get("pattern", "");
  const std::string graph_path = args.Get("graph", "");
  auto top_k = ParseUint64(args.Get("top", "0"));
  auto threads = ParseUint64(args.Get("threads", "0"));
  auto sites = ParseUint64(args.Get("sites", "0"));
  auto repeat = ParseUint64(args.Get("repeat", "1"));
  if (pattern_path.empty() || graph_path.empty())
    return Fail("--pattern and --graph are required");
  if (!top_k.ok() || !threads.ok() || !sites.ok() || !repeat.ok() ||
      *repeat == 0)
    return Fail("bad numeric flag");
  auto q = LoadGraph(pattern_path);
  if (!q.ok()) return Fail(q.status().ToString());
  auto g = LoadGraph(graph_path);
  if (!g.ok()) return Fail(g.status().ToString());

  // One table drives the whole dispatch (shared with the examples); the
  // engine handles notion x policy uniformly. --threads / --sites select
  // the corresponding policy, not just its parameter. --regex wraps the
  // pattern in constraints and runs regex-strong under the same policies.
  auto request = RequestFromAlgoName(algo);
  if (!request.ok()) return Fail(request.status().ToString());
  if (*threads > 0 && *sites > 0)
    return Fail("--threads and --sites are mutually exclusive");
  if (*threads > 0) request->policy = ExecPolicy::Parallel(*threads);
  if (*sites > 0) {
    DistributedOptions options = request->policy.distributed;
    options.num_sites = static_cast<uint32_t>(*sites);
    request->policy = ExecPolicy::Distributed(options);
  }

  Engine engine;
  Result<PreparedQuery> prepared = Status::Internal("unset");
  const std::string regex_spec = args.Get("regex", "");
  if (!regex_spec.empty()) {
    auto query = ParseRegexSpec(*q, regex_spec);
    if (!query.ok()) return Fail(query.status().ToString());
    request->algo = Algo::kRegexStrong;
    prepared = engine.Prepare(std::move(*query));
  } else {
    prepared = engine.Prepare(*q);
  }
  if (!prepared.ok()) return Fail(prepared.status().ToString());
  // --repeat exercises the serving path: iterations after the first are
  // served from the dual-filter memo (watch the cache line at the end).
  auto response = engine.Match(*prepared, *g, *request);
  if (!response.ok()) return Fail(response.status().ToString());
  for (uint64_t i = 1; i < *repeat; ++i) {
    response = engine.Match(*prepared, *g, *request);
    if (!response.ok()) return Fail(response.status().ToString());
  }

  if (response->relation.num_query_nodes() > 0) {
    std::printf("match %s: %zu pairs across %zu data nodes (%.3fs)\n",
                response->matched ? "succeeds" : "fails",
                response->relation.NumPairs(),
                MatchedNodes(response->relation).size(), response->seconds);
    return 0;
  }

  std::vector<PerfectSubgraph> shown = response->subgraphs;
  if (*top_k > 0) shown = TopKMatches(*q, response->subgraphs, *top_k);
  std::printf("%zu perfect subgraph(s) via %s policy (%.3fs)%s\n",
              response->subgraphs.size(),
              ExecPolicyName(request->policy.kind), response->seconds,
              *top_k > 0 ? " (showing top-ranked)" : "");
  for (const PerfectSubgraph& pg : shown) {
    std::printf("  center %u: %zu nodes, %zu edges, score %.3f\n", pg.center,
                pg.nodes.size(), pg.edges.size(), ScoreMatch(*q, pg));
  }
  if (*repeat > 1) PrintCacheStats(engine);
  return 0;
}

int RunBatch(const Args& args) {
  const std::string algo = args.Get("algo", "strong+");
  const std::string patterns_arg = args.Get("patterns", "");
  const std::string graph_path = args.Get("graph", "");
  auto threads = ParseUint64(args.Get("threads", "0"));
  auto repeat = ParseUint64(args.Get("repeat", "1"));
  if (patterns_arg.empty() || graph_path.empty())
    return Fail("--patterns and --graph are required");
  if (!threads.ok() || !repeat.ok() || *repeat == 0)
    return Fail("bad numeric flag");
  auto g = LoadGraph(graph_path);
  if (!g.ok()) return Fail(g.status().ToString());
  auto request = RequestFromAlgoName(algo);
  if (!request.ok()) return Fail(request.status().ToString());
  if (*threads > 0) request->policy = ExecPolicy::Parallel(*threads);

  // Every pattern is compiled through the prepared-query cache, then the
  // whole mix (repeated --repeat times) goes down as ONE MatchBatch —
  // duplicate (center, radius) balls are built once across the batch.
  Engine engine;
  std::vector<std::shared_ptr<const PreparedQuery>> prepared;
  std::vector<std::string> names;
  for (std::string_view path : SplitString(patterns_arg, ",")) {
    auto q = LoadGraph(std::string(path));
    if (!q.ok()) return Fail(q.status().ToString());
    auto pq = engine.PrepareCached(*q);
    if (!pq.ok())
      return Fail(std::string(path) + ": " + pq.status().ToString());
    prepared.push_back(*pq);
    names.emplace_back(path);
  }
  std::vector<BatchItem> items;
  for (uint64_t r = 0; r < *repeat; ++r) {
    for (const auto& pq : prepared) items.push_back({pq.get(), *request, {}});
  }

  auto responses = engine.MatchBatch(*g, items);
  double seconds = 0;
  for (size_t i = 0; i < responses.size(); ++i) {
    const std::string& name = names[i % names.size()];
    if (!responses[i].ok()) {
      std::printf("  %-20s error: %s\n", name.c_str(),
                  responses[i].status().ToString().c_str());
      continue;
    }
    const MatchResponse& response = *responses[i];
    seconds = std::max(seconds, response.seconds);
    std::printf("  %-20s %zu perfect subgraph(s), %zu ball(s) shared\n",
                name.c_str(), response.subgraphs.size(),
                response.stats.balls_shared);
  }
  std::printf("%zu request(s) via %s policy (%.3fs)\n", items.size(),
              ExecPolicyName(request->policy.kind), seconds);
  PrintCacheStats(engine);
  return 0;
}

int RunWatch(const Args& args) {
  const std::string pattern_path = args.Get("pattern", "");
  const std::string graph_path = args.Get("graph", "");
  auto updates = ParseUint64(args.Get("updates", "20"));
  auto batch = ParseUint64(args.Get("batch", "0"));
  auto threads = ParseUint64(args.Get("threads", "0"));
  auto seed = ParseUint64(args.Get("seed", "1"));
  if (pattern_path.empty() || graph_path.empty())
    return Fail("--pattern and --graph are required");
  if (!updates.ok() || !batch.ok() || !threads.ok() || !seed.ok())
    return Fail("bad numeric flag");
  auto q = LoadGraph(pattern_path);
  if (!q.ok()) return Fail(q.status().ToString());
  auto g = LoadGraph(graph_path);
  if (!g.ok()) return Fail(g.status().ToString());

  Engine engine;
  auto prepared = engine.Prepare(*q);
  if (!prepared.ok()) return Fail(prepared.status().ToString());

  // Open the continuous query: random edge churn repairs only the balls
  // near each touched endpoint, and net Θ changes stream to the sink.
  size_t added = 0, removed = 0;
  IncrementalOptions options;
  if (*threads > 0) options.policy = ExecPolicy::Parallel(*threads);
  options.delta_sink = [&added, &removed](SubgraphDelta&& delta) {
    if (delta.kind == SubgraphDelta::Kind::kAdded) {
      ++added;
      std::printf("  + subgraph around node %u (%zu nodes)\n",
                  delta.subgraph.center, delta.subgraph.nodes.size());
    } else {
      ++removed;
      std::printf("  - subgraph on %zu nodes (smallest %u)\n",
                  delta.subgraph.nodes.size(), delta.subgraph.center);
    }
    return true;
  };
  auto session = engine.OpenIncremental(*prepared, *g, std::move(options));
  if (!session.ok()) return Fail(session.status().ToString());
  std::printf("watching %zu-node graph, %zu initial match(es), dQ = %u\n",
              g->num_nodes(), session->CurrentMatches().size(),
              session->radius());

  Rng rng(*seed);
  double total_seconds = 0;
  size_t applied = 0, affected = 0;
  std::vector<GraphEdit> pending;
  // Progress guarantee on degenerate graphs (few feasible pairs): give up
  // after a bounded number of rejected candidates instead of spinning.
  size_t rejected = 0;
  const size_t max_rejected = 200 * (*updates + 1);
  const auto flush = [&](bool force) -> Result<bool> {
    if (pending.empty() || (!force && pending.size() < *batch)) return false;
    Status s = session->ApplyBatch(pending);
    if (!s.ok()) return s;
    pending.clear();
    affected += session->last_update().affected_centers;
    total_seconds += session->last_update().seconds;
    return true;
  };
  while (applied < *updates && rejected < max_rejected) {
    const NodeId a = static_cast<NodeId>(rng.Uniform(g->num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.Uniform(g->num_nodes()));
    if (a == b) {
      ++rejected;
      continue;
    }
    const GraphEdit edit = rng.Bernoulli(0.7) ? GraphEdit::InsertEdge(a, b)
                                              : GraphEdit::RemoveEdge(a, b);
    if (*batch > 1) {
      // Validate against the live adjacency (and the edits already queued
      // for this batch) so the batch applies cleanly.
      const bool feasible =
          edit.kind == GraphEdit::Kind::kInsertEdge
              ? !session->data().HasEdge(a, b, 0)
              : session->data().HasEdge(a, b, 0);
      const bool conflicts = std::any_of(
          pending.begin(), pending.end(), [&](const GraphEdit& p) {
            return p.from == a && p.to == b;
          });
      if (!feasible || conflicts) {
        ++rejected;
        continue;
      }
      pending.push_back(edit);
      ++applied;
      auto flushed = flush(applied == *updates);
      if (!flushed.ok()) return Fail(flushed.status().ToString());
      continue;
    }
    const Status s = edit.kind == GraphEdit::Kind::kInsertEdge
                         ? session->InsertEdge(a, b)
                         : session->RemoveEdge(a, b);
    if (!s.ok()) {
      ++rejected;  // duplicate / absent edge: try another pair
      continue;
    }
    ++applied;
    affected += session->last_update().affected_centers;
    total_seconds += session->last_update().seconds;
  }
  if (auto flushed = flush(true); !flushed.ok()) {
    return Fail(flushed.status().ToString());
  }
  if (applied < *updates) {
    std::printf("stopped after %zu update(s): no more feasible edits\n",
                applied);
  }

  std::printf("%zu update(s) in %.2f ms (%.3f ms avg, %zu ball repairs, "
              "%.1f avg); deltas: +%zu -%zu; matches now: %zu\n",
              applied, total_seconds * 1e3,
              applied > 0 ? total_seconds * 1e3 / applied : 0, affected,
              applied > 0 ? static_cast<double>(affected) / applied : 0,
              added, removed, session->CurrentMatches().size());

  // Cross-check the maintained result against a from-scratch match of the
  // final snapshot — the invariant the differential suite locks down.
  // Both sides are canonical (min-center representative, center order), so
  // compare (center, content hash) pairs, not just counts.
  MatchRequest verify;
  verify.algo = Algo::kStrong;
  auto scratch = engine.Match(*prepared, *session->Snapshot(), verify);
  if (!scratch.ok()) return Fail(scratch.status().ToString());
  const auto maintained = session->CurrentMatches();
  bool identical = scratch->subgraphs.size() == maintained.size();
  for (size_t i = 0; identical && i < maintained.size(); ++i) {
    identical = scratch->subgraphs[i].center == maintained[i].center &&
                scratch->subgraphs[i].SameSubgraph(maintained[i]);
  }
  if (!identical) {
    return Fail("maintained result disagrees with from-scratch match");
  }
  std::printf("verified against from-scratch match (%zu subgraph(s))\n",
              maintained.size());
  return 0;
}

// Serving load generator: stands a GpmServer on a loaded or generated
// graph and drives it with the shared load harness (serving/load_driver.h)
// — N paced or closed-loop client threads, optional writer churn
// publishing snapshot epochs, optional token-bucket admission.
int RunLoadgen(const Args& args) {
  using serving::GpmServer;
  using serving::LoadOptions;
  using serving::LoadProgress;
  using serving::LoadReport;
  using serving::ServerOptions;
  const std::string graph_path = args.Get("graph", "");
  const std::string patterns_arg = args.Get("patterns", "");
  const std::string kind = args.Get("kind", "uniform");
  auto nodes = ParseUint64(args.Get("nodes", "2000"));
  auto labels = ParseUint64(args.Get("labels", "0"));
  auto alpha = ParseDouble(args.Get("alpha", "1.2"));
  auto seed = ParseUint64(args.Get("seed", "1"));
  auto npatterns = ParseUint64(args.Get("npatterns", "3"));
  auto pnodes = ParseUint64(args.Get("pnodes", "8"));
  auto threads = ParseUint64(args.Get("threads", "4"));
  auto duration = ParseDouble(args.Get("duration", "3"));
  auto qps = ParseDouble(args.Get("qps", "0"));
  auto churn = ParseDouble(args.Get("churn", "0"));
  auto batch = ParseUint64(args.Get("batch", "4"));
  auto deadline_ms = ParseDouble(args.Get("deadline-ms", "0"));
  auto rate = ParseDouble(args.Get("rate", "0"));
  auto burst = ParseDouble(args.Get("burst", "0"));
  if (!nodes.ok() || !labels.ok() || !alpha.ok() || !seed.ok() ||
      !npatterns.ok() || !pnodes.ok() || !threads.ok() || !duration.ok() ||
      !qps.ok() || !churn.ok() || !batch.ok() || !deadline_ms.ok() ||
      !rate.ok() || !burst.ok()) {
    return Fail("bad numeric flag");
  }
  auto request = RequestFromAlgoName(args.Get("algo", "strong+"));
  if (!request.ok()) return Fail(request.status().ToString());

  Graph g;
  if (!graph_path.empty()) {
    auto loaded = LoadGraph(graph_path);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    g = std::move(*loaded);
  } else {
    const uint32_t n = static_cast<uint32_t>(*nodes);
    const uint32_t l = *labels > 0 ? static_cast<uint32_t>(*labels)
                                   : ScaledLabelCount(n);
    if (kind == "amazon") {
      g = MakeAmazonLike(n, *seed, l);
    } else if (kind == "youtube") {
      g = MakeYouTubeLike(n, *seed, l);
    } else if (kind == "uniform") {
      g = MakeUniform(n, *alpha, l, *seed);
    } else {
      return Fail("unknown --kind '" + kind + "'");
    }
  }

  Engine engine;
  std::vector<std::shared_ptr<const PreparedQuery>> queries;
  if (!patterns_arg.empty()) {
    for (std::string_view path : SplitString(patterns_arg, ",")) {
      auto q = LoadGraph(std::string(path));
      if (!q.ok()) return Fail(q.status().ToString());
      auto pq = engine.PrepareCached(*q);
      if (!pq.ok())
        return Fail(std::string(path) + ": " + pq.status().ToString());
      queries.push_back(*pq);
    }
  } else {
    Rng rng(*seed * 31 + 7);
    for (uint64_t i = 0; i < *npatterns; ++i) {
      auto q = ExtractPattern(g, static_cast<uint32_t>(*pnodes), &rng);
      if (!q.ok()) return Fail(q.status().ToString());
      auto pq = engine.PrepareCached(*q);
      if (!pq.ok()) return Fail(pq.status().ToString());
      queries.push_back(*pq);
    }
  }
  if (queries.empty()) return Fail("no patterns to serve");

  ServerOptions server_options;
  server_options.admission_rate = *rate;
  server_options.admission_burst = *burst;
  server_options.deadline_seconds = *deadline_ms * 1e-3;
  server_options.max_clients = static_cast<size_t>(*threads) + 2;
  // The writer maintains the smallest-diameter query: the repair ball
  // radius is the pattern diameter, so this keeps per-batch repair local.
  for (size_t i = 1; i < queries.size(); ++i) {
    if (queries[i]->diameter() <
        queries[server_options.writer_query_index]->diameter()) {
      server_options.writer_query_index = i;
    }
  }
  auto server = GpmServer::Create(engine, queries, g, server_options);
  if (!server.ok()) return Fail(server.status().ToString());

  std::printf("serving %zu nodes, %zu edges | %zu queries | %zu client "
              "threads%s%s\n",
              g.num_nodes(), g.num_edges(), queries.size(),
              static_cast<size_t>(*threads),
              *churn > 0 ? ", writer churn on" : "",
              *rate > 0 ? ", admission on" : "");

  LoadOptions load;
  load.client_threads = static_cast<size_t>(*threads);
  load.duration_seconds = *duration;
  load.target_qps = *qps;
  load.churn_edits_per_second = *churn;
  load.churn_batch = static_cast<size_t>(*batch);
  load.request = *request;
  load.seed = *seed;
  load.progress = [](const LoadProgress& p) {
    std::printf("  t=%5.1fs  %llu served, %llu rejected | epoch %llu "
                "(lag %llu, %llu retiring)\n",
                p.elapsed_seconds,
                static_cast<unsigned long long>(p.served),
                static_cast<unsigned long long>(p.rejected),
                static_cast<unsigned long long>(p.epoch),
                static_cast<unsigned long long>(p.epoch_lag),
                static_cast<unsigned long long>(p.retired_pending));
    std::fflush(stdout);
  };
  const LoadReport report = RunLoad(*server, load);
  std::printf("%s", serving::RenderReport(report).c_str());
  PrintCacheStats(server->engine());
  if (report.consistency_mismatches > 0 || report.groundtruth_mismatches > 0)
    return Fail("verification found mismatched responses");
  return 0;
}

int RunMinimize(const Args& args) {
  const std::string pattern_path = args.Get("pattern", "");
  if (pattern_path.empty()) return Fail("--pattern is required");
  auto q = LoadGraph(pattern_path);
  if (!q.ok()) return Fail(q.status().ToString());
  auto mq = MinimizeQuery(*q);
  if (!mq.ok()) return Fail(mq.status().ToString());
  std::printf("|Q| = %zu+%zu  ->  |Qm| = %zu+%zu\n", q->num_nodes(),
              q->num_edges(), mq->minimized.num_nodes(),
              mq->minimized.num_edges());
  const std::string out = args.Get("out", "");
  if (!out.empty()) {
    Status s = SaveGraph(mq->minimized, out);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("wrote minimized pattern to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gpm

int main(int argc, char** argv) {
  if (argc < 2) return gpm::Usage();
  const std::string command = argv[1];
  const gpm::Args args = gpm::Args::Parse(argc, argv, 2);
  if (command == "generate") return gpm::RunGenerate(args);
  if (command == "stats") return gpm::RunStats(args);
  if (command == "extract") return gpm::RunExtract(args);
  if (command == "match") return gpm::RunMatch(args);
  if (command == "batch") return gpm::RunBatch(args);
  if (command == "watch") return gpm::RunWatch(args);
  if (command == "algos") return gpm::RunAlgos();
  if (command == "minimize") return gpm::RunMinimize(args);
  if (command == "loadgen") return gpm::RunLoadgen(args);
  return gpm::Usage();
}
