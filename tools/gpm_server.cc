// gpm_server: the epoch-snapshot serving layer as a runnable binary — a
// self-contained demonstration that readers keep matching while the
// writer publishes new graph versions.
//
//   gpm_server [--nodes N] [--kind uniform|amazon|youtube] [--seed S]
//              [--threads T] [--duration SECONDS] [--churn EDITS_PER_S]
//              [--batch B] [--rate TOKENS_PER_S] [--burst B]
//              [--deadline-ms MS] [--algo NAME]
//
// Generates a synthetic graph, extracts a small query mix (plus one
// low-diameter pattern the writer maintains incrementally), stands up a
// GpmServer, and runs two phases of the shared load harness: a read-only
// baseline, then the same reader fleet under writer churn. Progress
// prints at ~1 Hz; each phase ends with the full report (QPS, latency
// quantiles, admission/deadline accounting, snapshot epoch lifecycle,
// and the response-verification tallies).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "api/algo_names.h"
#include "common/string_util.h"
#include "graph/generator.h"
#include "quality/workloads.h"
#include "serving/load_driver.h"

namespace gpm {
namespace {

using serving::GpmServer;
using serving::LoadOptions;
using serving::LoadProgress;
using serving::LoadReport;
using serving::ServerOptions;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

std::string Flag(int argc, char** argv, const std::string& name,
                 const std::string& fallback) {
  const std::string key = "--" + name;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (key == argv[i]) return argv[i + 1];
  }
  return fallback;
}

void PrintProgress(const LoadProgress& p) {
  std::printf("  t=%5.1fs  %llu served, %llu rejected | epoch %llu "
              "(lag %llu, %llu retiring)\n",
              p.elapsed_seconds, static_cast<unsigned long long>(p.served),
              static_cast<unsigned long long>(p.rejected),
              static_cast<unsigned long long>(p.epoch),
              static_cast<unsigned long long>(p.epoch_lag),
              static_cast<unsigned long long>(p.retired_pending));
  std::fflush(stdout);
}

int Run(int argc, char** argv) {
  auto nodes = ParseUint64(Flag(argc, argv, "nodes", "2000"));
  auto seed = ParseUint64(Flag(argc, argv, "seed", "1"));
  auto threads = ParseUint64(Flag(argc, argv, "threads", "4"));
  auto duration = ParseDouble(Flag(argc, argv, "duration", "3"));
  auto churn = ParseDouble(Flag(argc, argv, "churn", "6"));
  auto batch = ParseUint64(Flag(argc, argv, "batch", "3"));
  auto rate = ParseDouble(Flag(argc, argv, "rate", "0"));
  auto burst = ParseDouble(Flag(argc, argv, "burst", "0"));
  auto deadline_ms = ParseDouble(Flag(argc, argv, "deadline-ms", "250"));
  const std::string kind = Flag(argc, argv, "kind", "uniform");
  if (!nodes.ok() || !seed.ok() || !threads.ok() || !duration.ok() ||
      !churn.ok() || !batch.ok() || !rate.ok() || !burst.ok() ||
      !deadline_ms.ok()) {
    return Fail("bad numeric flag");
  }
  auto request = RequestFromAlgoName(Flag(argc, argv, "algo", "strong+"));
  if (!request.ok()) return Fail(request.status().ToString());

  const uint32_t n = static_cast<uint32_t>(*nodes);
  Graph g;
  if (kind == "amazon") {
    g = MakeAmazonLike(n, *seed, ScaledLabelCount(n));
  } else if (kind == "youtube") {
    g = MakeYouTubeLike(n, *seed, ScaledLabelCount(n));
  } else if (kind == "uniform") {
    g = MakeUniform(n, kDefaultAlpha, ScaledLabelCount(n), *seed);
  } else {
    return Fail("unknown --kind '" + kind + "'");
  }

  // The query mix: three 8-node patterns plus one 4-node pattern the
  // writer maintains (small diameter -> local repair balls).
  Engine engine;
  std::vector<std::shared_ptr<const PreparedQuery>> queries;
  Rng rng(*seed * 31 + 7);
  for (uint32_t nq : {8u, 8u, 8u, 4u}) {
    auto q = ExtractPattern(g, nq, &rng);
    if (!q.ok()) return Fail(q.status().ToString());
    auto pq = engine.PrepareCached(*q);
    if (!pq.ok()) return Fail(pq.status().ToString());
    queries.push_back(*pq);
  }

  ServerOptions server_options;
  server_options.admission_rate = *rate;
  server_options.admission_burst = *burst;
  server_options.deadline_seconds = *deadline_ms * 1e-3;
  server_options.max_clients = static_cast<size_t>(*threads) + 2;
  for (size_t i = 1; i < queries.size(); ++i) {
    if (queries[i]->diameter() <
        queries[server_options.writer_query_index]->diameter()) {
      server_options.writer_query_index = i;
    }
  }
  auto server = GpmServer::Create(engine, queries, g, server_options);
  if (!server.ok()) return Fail(server.status().ToString());
  std::printf("gpm_server: %s nodes, %s edges | %zu queries, writer "
              "maintains #%zu (diameter %u) | %zu client threads\n",
              WithThousandsSeparators(g.num_nodes()).c_str(),
              WithThousandsSeparators(g.num_edges()).c_str(),
              queries.size(), server_options.writer_query_index,
              queries[server_options.writer_query_index]->diameter(),
              static_cast<size_t>(*threads));

  LoadOptions load;
  load.client_threads = static_cast<size_t>(*threads);
  load.duration_seconds = *duration;
  load.request = *request;
  load.seed = *seed;
  load.progress = PrintProgress;

  std::printf("\n[phase 1] read-only baseline, %.1fs\n", *duration);
  const LoadReport baseline = RunLoad(*server, load);
  std::printf("%s", serving::RenderReport(baseline).c_str());

  load.churn_edits_per_second = *churn;
  load.churn_batch = static_cast<size_t>(*batch);
  load.seed = *seed + 1;
  std::printf("\n[phase 2] writer churn %.0f edits/s in batches of %zu, "
              "%.1fs\n",
              *churn, load.churn_batch, *duration);
  const LoadReport churned = RunLoad(*server, load);
  std::printf("%s", serving::RenderReport(churned).c_str());

  const bool clean = baseline.consistency_mismatches == 0 &&
                     churned.consistency_mismatches == 0 &&
                     baseline.groundtruth_mismatches == 0 &&
                     churned.groundtruth_mismatches == 0 &&
                     baseline.errors == 0 && churned.errors == 0;
  std::printf("\n%s: baseline %.1f qps, under churn %.1f qps (%.2fx), "
              "%llu epochs published\n",
              clean ? "clean" : "FAILED", baseline.qps, churned.qps,
              baseline.qps > 0 ? churned.qps / baseline.qps : 0,
              static_cast<unsigned long long>(churned.snapshots_published));
  return clean ? 0 : 1;
}

}  // namespace
}  // namespace gpm

int main(int argc, char** argv) { return gpm::Run(argc, argv); }
